(* standbyd end to end: an in-process server on a Unix socket driven
   through the real wire protocol — served results vs the offline
   engine, admission backpressure, deadline degradation, protocol
   robustness (malformed/oversized/partial/unknown-version frames),
   client-disconnect cancellation and graceful draining. *)

module Process = Standby_device.Process
module Version = Standby_cells.Version
module Optimizer = Standby_opt.Optimizer
module Assignment = Standby_power.Assignment
module Evaluate = Standby_power.Evaluate
module Benchmarks = Standby_circuits.Benchmarks
module Job = Standby_service.Job
module Result_store = Standby_service.Result_store
module Json = Standby_telemetry.Json
module Metrics = Standby_telemetry.Metrics
module Telemetry = Standby_telemetry.Telemetry
module Protocol = Standby_server.Protocol
module Server = Standby_server.Server
module Client = Standby_server.Client

let check = Alcotest.check
let quick name f = Alcotest.test_case name `Quick f

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let ok = function Ok v -> v | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* Client calls fail with typed errors; render them for the report. *)
let cok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected client error: %s" (Client.error_message e)

(* One characterized-library cache shared by every server in this
   binary — characterization is the expensive setup. *)
let libraries = Job.Library_cache.create ()

let fresh_socket () =
  let file = Filename.temp_file "standbyd" ".sock" in
  Sys.remove file;
  file

type harness = { server : Server.t; thread : Thread.t; address : Protocol.address }

let start ?(capacity = 4) ?(workers = 2) ?max_frame_bytes ?store () =
  let address = Protocol.Unix_socket (fresh_socket ()) in
  let config = Server.default_config address in
  let config =
    {
      config with
      Server.capacity;
      workers = Some workers;
      store;
      max_frame_bytes =
        Option.value max_frame_bytes ~default:config.Server.max_frame_bytes;
    }
  in
  match Server.create ~libraries config with
  | Error msg -> Alcotest.failf "server create: %s" msg
  | Ok server -> { server; thread = Thread.create Server.run server; address }

let stop h =
  Server.request_drain h.server;
  Thread.join h.thread

let with_server ?capacity ?workers ?max_frame_bytes ?store f =
  let h = start ?capacity ?workers ?max_frame_bytes ?store () in
  Fun.protect ~finally:(fun () -> stop h) (fun () -> f h)

let connect h =
  match Client.connect h.address with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Client.error_message e)

let with_client h f =
  let c = connect h in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let optimize ?(id = "job") ?(source = Protocol.Circuit "c432")
    ?(mode = Version.default_mode) ?(method_ = Optimizer.Heuristic_1)
    ?(penalty = 0.05) ?deadline_s ?(progress = false) () =
  Protocol.Optimize { Protocol.id; source; mode; method_; penalty; deadline_s; progress }

let show_response r = Json.to_string (Protocol.response_to_json r)

(* Awkward floats on purpose: the wire codec must round-trip entries at
   full precision for the shared cache tier's bit-identity claim. *)
let sample_entry =
  {
    Result_store.method_name = "heu1";
    penalty = 0.05;
    budget = 6.2912600027129457;
    delay = 6.1979138612693045;
    delay_fast = 6.17;
    delay_slow = 6.9;
    total = 4.0582109633403818e-07;
    isub = 2.6e-07;
    igate = 1.45e-07;
    runtime_s = 0.125;
    assignment = "vector 10110\ngate 0 0 1\n";
  }

let expect_result = function
  | Protocol.Result p -> p
  | r -> Alcotest.failf "expected a result, got %s" (show_response r)

let expect_status = function
  | Protocol.Status_reply s -> s
  | r -> Alcotest.failf "expected a status reply, got %s" (show_response r)

(* Poll the daemon's status until [pred] holds (fresh connection per
   probe, so probes never interleave with a pipelined client). *)
let wait_status ?(timeout_s = 20.0) h pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let s = with_client h (fun c -> expect_status (cok (Client.rpc c Protocol.Status))) in
    if pred s then s
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "status condition not reached within %.0f s" timeout_s
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let metric_value h name =
  let body =
    with_client h (fun c ->
        match cok (Client.rpc c Protocol.Metrics) with
        | Protocol.Metrics_reply { body; _ } -> body
        | r -> Alcotest.failf "expected metrics, got %s" (show_response r))
  in
  let value = ref None in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line 0 i = name ->
           value :=
             float_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
         | _ -> ());
  match !value with
  | Some v -> v
  | None -> Alcotest.failf "metric %s not in exposition" name

(* Raw-socket access for the robustness tests: drive the wire format by
   hand, below the typed client. *)
let raw_connect h =
  let path =
    match h.address with Protocol.Unix_socket p -> p | _ -> assert false
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let read_response reader =
  match Protocol.Frame.read reader with
  | Ok line -> ok (Result.bind (Json.of_string line) Protocol.response_of_json)
  | Error `Eof -> Alcotest.fail "unexpected EOF from server"
  | Error `Oversized -> Alcotest.fail "oversized server response"
  | Error (`Error msg) -> Alcotest.failf "read: %s" msg

let expect_error ~sub = function
  | Protocol.Error_response { message; _ } ->
    if not (contains ~sub message) then
      Alcotest.failf "error %S does not mention %S" message sub
  | r -> Alcotest.failf "expected an error response, got %s" (show_response r)

let status_line = Json.to_string (Protocol.request_to_json Protocol.Status) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Protocol codec (pure)                                                *)

let roundtrip_request r =
  match Protocol.request_of_json (Protocol.request_to_json r) with
  | Ok r' -> check Alcotest.bool "request survives the round trip" true (r = r')
  | Error msg -> Alcotest.failf "request round trip: %s" msg

let roundtrip_response r =
  match Protocol.response_of_json (Protocol.response_to_json r) with
  | Ok r' -> check Alcotest.bool "response survives the round trip" true (r = r')
  | Error msg -> Alcotest.failf "response round trip: %s" msg

let test_codec_roundtrip () =
  roundtrip_request (optimize ());
  roundtrip_request
    (optimize ~id:"x/1"
       ~source:(Protocol.Bench { name = "tiny"; text = "INPUT(a)\nOUTPUT(a)\n" })
       ~mode:Version.state_only_mode
       ~method_:(Optimizer.Heuristic_2 { time_limit_s = 1.5 })
       ~penalty:0.25 ~deadline_s:3.0 ());
  roundtrip_request
    (optimize ~method_:(Optimizer.Hill_climb { time_limit_s = 0.5; max_rounds = 3 }) ());
  roundtrip_request (optimize ~method_:Optimizer.Exact ());
  (* Greedy rides the v2 window: the frame gains mode/time_budget_ms
     members and must decode back to the same method. *)
  roundtrip_request (optimize ~method_:(Optimizer.Greedy { time_budget_s = 2.0 }) ());
  roundtrip_request Protocol.Status;
  roundtrip_request Protocol.Metrics;
  roundtrip_request (Protocol.Cache_get { key = "0123456789abcdef" });
  roundtrip_request (Protocol.Cache_put { key = "0123456789abcdef"; entry = sample_entry });
  roundtrip_request (Protocol.Drain { backend = None });
  roundtrip_request (Protocol.Drain { backend = Some "unix:/tmp/b1.sock" });
  roundtrip_response
    (Protocol.Rejected { id = "j"; reason = "queue full"; retry_after_s = 1.25 });
  roundtrip_response (Protocol.Error_response { id = None; message = "nope" });
  roundtrip_response (Protocol.Error_response { id = Some "j"; message = "nope" });
  roundtrip_response
    (Protocol.Status_reply
       {
         Protocol.draining = false;
         accepted = 3;
         rejected = 1;
         in_flight = 2;
         queue_depth = 2;
         capacity = 64;
         workers = 4;
         uptime_s = 1.5;
         incumbent_a = None;
         backends = [];
       });
  roundtrip_response
    (Protocol.Status_reply
       {
         Protocol.draining = true;
         accepted = 10;
         rejected = 0;
         in_flight = 1;
         queue_depth = 1;
         capacity = 0;
         workers = 2;
         uptime_s = 99.25;
         incumbent_a = Some 2.3546121681693101e-06;
         backends =
           [
             {
               Protocol.backend = "unix:/tmp/b1.sock";
               health = "healthy";
               backend_in_flight = 3;
               backend_incumbent_a = Some 4.0582109633403818e-07;
               consecutive_failures = 0;
               last_probe_s = 0.5;
             };
             {
               Protocol.backend = "127.0.0.1:7171";
               health = "down";
               backend_in_flight = 0;
               backend_incumbent_a = None;
               consecutive_failures = 4;
               last_probe_s = -1.0;
             };
           ];
       });
  roundtrip_response (Protocol.Cache_found { key = "ff00"; entry = sample_entry });
  roundtrip_response (Protocol.Cache_missing { key = "ff00" });
  roundtrip_response (Protocol.Cache_ack { key = "ff00"; stored = true });
  roundtrip_response (Protocol.Cache_ack { key = "ff00"; stored = false });
  roundtrip_response
    (Protocol.Metrics_reply { content_type = "text/plain"; body = "a 1" })

let test_codec_roundtrip_v2 () =
  roundtrip_request (optimize ~progress:true ());
  roundtrip_request Protocol.Stats;
  roundtrip_response
    (Protocol.Progress
       {
         Protocol.progress_id = "job/7";
         progress_leakage_a = 2.3546121681693101e-06;
         progress_elapsed_s = 0.0625;
         improvement = 3;
       });
  (* A registry snapshot with histograms survives the wire — the fleet
     aggregation path depends on bucket-exact round trips. *)
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "server.accepted") 5;
  Metrics.set_gauge (Metrics.gauge reg "server.queue_depth") 2.0;
  let h = Metrics.histogram reg "engine.job_wall_s" ~buckets:[ 0.1; 1.0 ] in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 3.0 ];
  roundtrip_response (Protocol.Stats_reply (Metrics.registry_snapshot reg));
  check Alcotest.bool "progress is not terminal" false
    (Protocol.is_terminal
       (Protocol.Progress
          {
            Protocol.progress_id = "j";
            progress_leakage_a = 1e-6;
            progress_elapsed_s = 0.1;
            improvement = 1;
          }));
  check Alcotest.bool "stats reply is terminal" true
    (Protocol.is_terminal (Protocol.Stats_reply (Metrics.registry_snapshot reg)))

(* The optional trace field: attached by request_to_json ?trace, read
   back by trace_of_json, invisible to request_of_json (v1 peers just
   ignore it). *)
let test_trace_field_roundtrip () =
  let ctx =
    {
      Telemetry.trace_id = "4fd1e20a55aa33cc";
      parent = Some { Telemetry.pid = 1234; span = 56 };
    }
  in
  let json = Protocol.request_to_json ~trace:ctx (optimize ~progress:true ()) in
  (match Protocol.trace_of_json json with
   | Some got -> check Alcotest.bool "trace context round trips" true (got = ctx)
   | None -> Alcotest.fail "trace field did not survive the round trip");
  (match Protocol.request_of_json json with
   | Ok r -> check Alcotest.bool "request decodes with trace attached" true
               (r = optimize ~progress:true ())
   | Error msg -> Alcotest.failf "request with trace rejected: %s" msg);
  (* Root context: no parent ref. *)
  let root = { Telemetry.trace_id = "abc"; parent = None } in
  (match Protocol.trace_of_json (Protocol.request_to_json ~trace:root Protocol.Status) with
   | Some got -> check Alcotest.bool "rootless parent round trips" true (got = root)
   | None -> Alcotest.fail "root trace context lost");
  (* Absent and malformed trace fields degrade to None, never an error. *)
  check Alcotest.bool "absent -> None" true
    (Protocol.trace_of_json (Protocol.request_to_json Protocol.Status) = None);
  let raw s = ok (Json.of_string s) in
  check Alcotest.bool "non-object trace -> None" true
    (Protocol.trace_of_json (raw {|{"v":1,"type":"status","trace":42}|}) = None);
  check Alcotest.bool "missing trace_id -> None" true
    (Protocol.trace_of_json (raw {|{"v":1,"type":"status","trace":{"span":7}}|}) = None)

(* v1 <-> v2 compatibility: a bare v1 optimize (no progress, no trace)
   decodes with the v2 defaults; the version window is [1..2] so v:3 is
   refused with the speaking range. *)
let test_version_window () =
  (match
     Result.bind
       (Json.of_string {|{"v":1,"type":"optimize","id":"x","circuit":"c432"}|})
       Protocol.request_of_json
   with
   | Ok (Protocol.Optimize o) ->
     check Alcotest.bool "v1 optimize defaults progress off" false o.Protocol.progress
   | Ok _ -> Alcotest.fail "v1 optimize decoded to the wrong verb"
   | Error msg -> Alcotest.failf "v1 optimize rejected: %s" msg);
  match
    Result.bind (Json.of_string {|{"v":3,"type":"status"}|}) Protocol.request_of_json
  with
  | Ok _ -> Alcotest.fail "accepted v:3"
  | Error msg ->
    check Alcotest.bool "names the speaking range" true
      (contains ~sub:"unsupported protocol version 3" msg
      && contains ~sub:"1-2" msg)

(* A pre-cluster v1 status record (no queue_depth, no backends) must
   still decode — additive protocol extension, no version bump. *)
let test_status_decodes_precluster () =
  let old =
    {|{"v":1,"type":"status","draining":false,"accepted":3,"rejected":1,"in_flight":2,"capacity":64,"workers":4,"uptime_s":1.5}|}
  in
  match Result.bind (Json.of_string old) Protocol.response_of_json with
  | Ok (Protocol.Status_reply s) ->
    check Alcotest.int "queue_depth falls back to in_flight" 2 s.Protocol.queue_depth;
    check Alcotest.bool "backends default to empty" true (s.Protocol.backends = [])
  | Ok r -> Alcotest.failf "expected a status reply, got %s" (show_response r)
  | Error msg -> Alcotest.failf "pre-cluster status: %s" msg

let test_codec_rejects () =
  let req s = Result.bind (Json.of_string s) Protocol.request_of_json in
  let expect ~sub name = function
    | Ok _ -> Alcotest.failf "%s: expected an error mentioning %S" name sub
    | Error msg ->
      if not (contains ~sub msg) then
        Alcotest.failf "%s: error %S does not mention %S" name msg sub
  in
  expect ~sub:"version" "future version" (req {|{"v":99,"type":"status"}|});
  expect ~sub:"type" "unknown type" (req {|{"v":1,"type":"frobnicate"}|});
  expect ~sub:"circuit" "no source" (req {|{"v":1,"type":"optimize","id":"x"}|});
  expect ~sub:"method" "bad method"
    (req {|{"v":1,"type":"optimize","id":"x","circuit":"c432","method":"annealing"}|})

let test_addresses () =
  check Alcotest.bool "unix: prefix" true
    (Protocol.address_of_string "unix:/tmp/s.sock"
    = Ok (Protocol.Unix_socket "/tmp/s.sock"));
  check Alcotest.bool "bare path" true
    (Protocol.address_of_string "standbyopt.sock"
    = Ok (Protocol.Unix_socket "standbyopt.sock"));
  check Alcotest.bool "host:port" true
    (Protocol.address_of_string "127.0.0.1:7171"
    = Ok (Protocol.Tcp ("127.0.0.1", 7171)));
  check Alcotest.bool "bad port is an error" true
    (Result.is_error (Protocol.address_of_string "host:notaport"));
  check Alcotest.bool "empty is an error" true
    (Result.is_error (Protocol.address_of_string ""))

(* ------------------------------------------------------------------ *)
(* Served results vs the offline engine                                 *)

let offline ~penalty method_ =
  let lib =
    Job.Library_cache.get libraries ~mode:Version.default_mode
      ~process:Process.default
  in
  Optimizer.run lib (Benchmarks.circuit "c432") ~penalty method_

let check_matches_offline name (p : Protocol.result_payload) ~penalty method_ =
  let o = offline ~penalty method_ in
  check (Alcotest.float 0.0)
    (name ^ ": leakage bit-identical")
    o.Optimizer.breakdown.Evaluate.total p.Protocol.leakage_a;
  check Alcotest.string
    (name ^ ": assignment bit-identical")
    (Assignment.to_string o.Optimizer.assignment)
    p.Protocol.assignment;
  check (Alcotest.float 0.0) (name ^ ": delay") o.Optimizer.delay p.Protocol.delay

let test_serve_matches_offline () =
  with_server (fun h ->
      with_client h (fun c ->
          let p = expect_result (cok (Client.rpc c (optimize ~id:"one" ()))) in
          check Alcotest.string "id echoed" "one" p.Protocol.id;
          check Alcotest.string "computed" "computed" p.Protocol.status;
          check_matches_offline "serve" p ~penalty:0.05 Optimizer.Heuristic_1))

(* progress=true streams incumbent pushes before the terminal result:
   a fresh heu1 computation always visits at least one leaf, so at
   least one Progress frame precedes the Result, ordinals count up
   from 1, and the final incumbent equals the result's leakage. *)
let test_progress_stream () =
  with_server (fun h ->
      with_client h (fun c ->
          cok (Client.send c (optimize ~id:"live" ~progress:true ()));
          let rec drain acc =
            match cok (Client.recv c) with
            | Protocol.Progress p -> drain (p :: acc)
            | r -> (List.rev acc, r)
          in
          let pushes, terminal = drain [] in
          let p = expect_result terminal in
          check Alcotest.bool "at least one progress push" true (pushes <> []);
          List.iteri
            (fun i (push : Protocol.progress_payload) ->
              check Alcotest.string "push echoes the job id" "live"
                push.Protocol.progress_id;
              check Alcotest.int "improvements count from 1" (i + 1)
                push.Protocol.improvement;
              check Alcotest.bool "elapsed is non-negative" true
                (push.Protocol.progress_elapsed_s >= 0.0))
            pushes;
          (* The push carries the search tree's incremental leakage; the
             result re-evaluates the breakdown — same leaf, so equal to
             within float noise but not bit-identical. *)
          let last = List.nth pushes (List.length pushes - 1) in
          check Alcotest.bool "final push is the answer" true
            (Float.abs (last.Protocol.progress_leakage_a -. p.Protocol.leakage_a)
            <= 1e-9 *. Float.abs p.Protocol.leakage_a);
          check_matches_offline "progress stream" p ~penalty:0.05 Optimizer.Heuristic_1))

(* Greedy over the wire: an optimize frame carrying the greedy method
   (stamped v2 with mode/time_budget_ms members) streams incumbents
   like any progress job, and its terminal result is bit-identical to
   an offline greedy run with the same budget — c432 reaches greedy
   quiescence in milliseconds, so the 5 s ceiling never cuts in and
   the answer is deterministic. *)
let test_greedy_submit_progress () =
  let greedy = Optimizer.Greedy { time_budget_s = 5.0 } in
  with_server (fun h ->
      with_client h (fun c ->
          cok (Client.send c (optimize ~id:"big" ~method_:greedy ~progress:true ()));
          let rec drain acc =
            match cok (Client.recv c) with
            | Protocol.Progress p -> drain (p :: acc)
            | r -> (List.rev acc, r)
          in
          let pushes, terminal = drain [] in
          let p = expect_result terminal in
          check Alcotest.bool "at least one progress push" true (pushes <> []);
          List.iter
            (fun (push : Protocol.progress_payload) ->
              check Alcotest.string "push echoes the job id" "big"
                push.Protocol.progress_id)
            pushes;
          check Alcotest.string "computed" "computed" p.Protocol.status;
          check_matches_offline "greedy submit" p ~penalty:0.05 greedy))

(* The stats verb returns the structured registry snapshot — the wire
   view standbyopt top and the router aggregator read. *)
let test_stats_verb () =
  with_server (fun h ->
      with_client h (fun c ->
          let _ = expect_result (cok (Client.rpc c (optimize ~id:"warm" ()))) in
          match cok (Client.rpc c Protocol.Stats) with
          | Protocol.Stats_reply snap ->
            check Alcotest.bool "server.accepted counted" true
              (Option.value (Metrics.find_counter snap "server.accepted") ~default:0 >= 1);
            (match Metrics.find_histogram snap "engine.job_wall_s" with
             | Some h -> check Alcotest.bool "wall histogram populated" true (h.Metrics.count >= 1)
             | None -> Alcotest.fail "engine.job_wall_s missing from stats");
            (* p99 estimation works straight off the wire snapshot. *)
            (match Metrics.find_histogram snap "engine.job_wall_s" with
             | Some h ->
               check Alcotest.bool "p99 estimable" true
                 (Metrics.percentile h 0.99 <> None)
             | None -> ())
          | r -> Alcotest.failf "expected stats, got %s" (show_response r)))

let test_concurrent_submits () =
  let penalties = [ 0.02; 0.05; 0.08; 0.1; 0.15; 0.25 ] in
  with_server ~capacity:8 ~workers:3 (fun h ->
      with_client h (fun c ->
          List.iteri
            (fun i penalty ->
              cok
                (Client.send c
                   (optimize ~id:(Printf.sprintf "p%d" i) ~penalty ())))
            penalties;
          let got = Hashtbl.create 8 in
          List.iter
            (fun _ ->
              let p = expect_result (cok (Client.recv c)) in
              Hashtbl.replace got p.Protocol.id p)
            penalties;
          (* Responses arrive in completion order; every request must be
             answered and each must match its own offline run. *)
          List.iteri
            (fun i penalty ->
              let id = Printf.sprintf "p%d" i in
              match Hashtbl.find_opt got id with
              | None -> Alcotest.failf "no response for %s" id
              | Some p ->
                check_matches_offline id p ~penalty Optimizer.Heuristic_1)
            penalties))

let test_inline_bench_source () =
  (* The .bench rendering lowers rich gates onto NAND/NOR/NOT, so the
     reference is an offline run on the same re-parsed text — not on the
     built-in original. *)
  let text = Standby_netlist.Bench_io.to_string (Benchmarks.circuit "c432") in
  let net = ok (Standby_netlist.Bench_io.of_string ~name:"c432-wire" text) in
  let lib =
    Job.Library_cache.get libraries ~mode:Version.default_mode
      ~process:Process.default
  in
  let o = Optimizer.run lib net ~penalty:0.05 Optimizer.Heuristic_1 in
  with_server (fun h ->
      with_client h (fun c ->
          let p =
            expect_result
              (cok
                 (Client.rpc c
                    (optimize ~id:"inline"
                       ~source:(Protocol.Bench { name = "c432-wire"; text })
                       ())))
          in
          check (Alcotest.float 0.0) "inline: leakage bit-identical"
            o.Optimizer.breakdown.Evaluate.total p.Protocol.leakage_a;
          check Alcotest.string "inline: assignment bit-identical"
            (Assignment.to_string o.Optimizer.assignment)
            p.Protocol.assignment))

(* ------------------------------------------------------------------ *)
(* Admission, deadlines, draining                                       *)

let test_deadline_degrades () =
  with_server (fun h ->
      with_client h (fun c ->
          let p =
            expect_result
              (cok
                 (Client.rpc c
                    (optimize ~id:"tight"
                       ~method_:(Optimizer.Heuristic_2 { time_limit_s = 30.0 })
                       ~deadline_s:0.001 ())))
          in
          check Alcotest.string "blown deadline degrades, not errors" "degraded"
            p.Protocol.status;
          check Alcotest.bool "still a valid assignment" true
            (String.length p.Protocol.assignment > 0)))

let test_queue_full_backpressure () =
  with_server ~capacity:1 ~workers:1 (fun h ->
      with_client h (fun c ->
          (* Frames on one connection are admitted in order: the slow job
             fills the only slot, so the second is rejected. *)
          cok
            (Client.send c
               (optimize ~id:"slow"
                  ~method_:(Optimizer.Heuristic_2 { time_limit_s = 1.0 })
                  ()));
          cok (Client.send c (optimize ~id:"bounced" ()));
          (match cok (Client.recv c) with
           | Protocol.Rejected { id; reason; retry_after_s } ->
             check Alcotest.string "rejected id" "bounced" id;
             check Alcotest.bool "reason names the queue" true
               (contains ~sub:"queue full" reason);
             check Alcotest.bool "retry hint is positive" true (retry_after_s > 0.0)
           | r -> Alcotest.failf "expected a rejection, got %s" (show_response r));
          let p = expect_result (cok (Client.recv c)) in
          check Alcotest.string "slow job still completes" "slow" p.Protocol.id))

let test_drain_finishes_in_flight () =
  let h = start ~workers:1 () in
  let slow = connect h in
  cok
    (Client.send slow
       (optimize ~id:"inflight"
          ~method_:(Optimizer.Heuristic_2 { time_limit_s = 1.0 })
          ()));
  ignore (wait_status h (fun s -> s.Protocol.in_flight >= 1));
  Server.request_drain h.server;
  (* Still in drain-wait: new work is turned away with a structured
     rejection, status still answers... *)
  with_client h (fun c ->
      (match cok (Client.rpc c (optimize ~id:"late" ())) with
       | Protocol.Rejected { reason; _ } ->
         check Alcotest.bool "rejection names the drain" true
           (contains ~sub:"drain" reason)
       | r -> Alcotest.failf "expected a drain rejection, got %s" (show_response r)));
  (* ... and the admitted job is never lost: its response arrives before
     the server exits. *)
  let p = expect_result (cok (Client.recv slow)) in
  check Alcotest.string "in-flight job answered during drain" "inflight"
    p.Protocol.id;
  Client.close slow;
  Thread.join h.thread;
  check Alcotest.bool "socket removed after drain" false
    (Sys.file_exists
       (match h.address with Protocol.Unix_socket p -> p | _ -> assert false))

let test_disconnect_cancels_job () =
  with_server ~workers:1 (fun h ->
      let before = metric_value h "server_cancelled" in
      let c = connect h in
      cok
        (Client.send c
           (optimize ~id:"doomed"
              ~method_:(Optimizer.Heuristic_2 { time_limit_s = 60.0 })
              ()));
      ignore (wait_status h (fun s -> s.Protocol.in_flight >= 1));
      (* Hang up mid-job: the worker must notice within moments — far
         inside the 60 s search budget — and the daemon must stay up. *)
      Client.close c;
      ignore (wait_status ~timeout_s:15.0 h (fun s -> s.Protocol.in_flight = 0));
      check Alcotest.bool "cancellation counted" true
        (metric_value h "server_cancelled" >= before +. 1.0);
      (* Still serving. *)
      with_client h (fun c2 ->
          let p = expect_result (cok (Client.rpc c2 (optimize ~id:"after" ()))) in
          check Alcotest.string "server survives the disconnect" "after"
            p.Protocol.id))

(* ------------------------------------------------------------------ *)
(* Wire robustness                                                      *)

let test_malformed_json_keeps_connection () =
  with_server (fun h ->
      let fd = raw_connect h in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let reader = Protocol.Frame.reader fd in
          write_all fd "this is not json\n";
          expect_error ~sub:"" (read_response reader);
          (* The same connection still works. *)
          write_all fd status_line;
          ignore (expect_status (read_response reader))))

let test_unknown_version () =
  with_server (fun h ->
      let fd = raw_connect h in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let reader = Protocol.Frame.reader fd in
          write_all fd "{\"v\":99,\"type\":\"status\"}\n";
          expect_error ~sub:"version" (read_response reader);
          write_all fd status_line;
          ignore (expect_status (read_response reader))))

let test_oversized_frame_drops_connection () =
  with_server ~max_frame_bytes:256 (fun h ->
      let fd = raw_connect h in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let reader = Protocol.Frame.reader fd in
          write_all fd (String.make 1024 'a' ^ "\n");
          expect_error ~sub:"" (read_response reader);
          (* The poisoned connection is dropped... *)
          match Protocol.Frame.read reader with
          | Error `Eof -> ()
          | Ok line -> Alcotest.failf "expected EOF, got %s" line
          | Error _ -> ());
      (* ... but the daemon keeps serving fresh connections. *)
      with_client h (fun c ->
          ignore (expect_status (cok (Client.rpc c Protocol.Status)))))

let test_partial_writes_reassemble () =
  with_server (fun h ->
      let fd = raw_connect h in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let reader = Protocol.Frame.reader fd in
          (* Dribble the request a few bytes at a time: the framing layer
             must reassemble it across reads. *)
          let n = String.length status_line in
          let rec dribble off =
            if off < n then begin
              let len = min 3 (n - off) in
              write_all fd (String.sub status_line off len);
              Thread.delay 0.002;
              dribble (off + len)
            end
          in
          dribble 0;
          ignore (expect_status (read_response reader))))

(* ------------------------------------------------------------------ *)
(* Cache verbs, status fields, wire drain, listener reuse               *)

let with_store f =
  let dir = Filename.temp_file "standbyd-store" "" in
  Sys.remove dir;
  let store = Result_store.create ~dir () in
  Fun.protect
    ~finally:(fun () -> ignore (Result_store.clear store); try Unix.rmdir dir with _ -> ())
    (fun () -> f store)

let test_cache_verbs_roundtrip () =
  with_store (fun store ->
      with_server ~store (fun h ->
          with_client h (fun c ->
              let key = "00112233445566778899aabbccddeeff" in
              (match cok (Client.rpc c (Protocol.Cache_get { key })) with
               | Protocol.Cache_missing { key = k } ->
                 check Alcotest.string "miss echoes the key" key k
               | r -> Alcotest.failf "expected a miss, got %s" (show_response r));
              (match cok (Client.rpc c (Protocol.Cache_put { key; entry = sample_entry })) with
               | Protocol.Cache_ack { stored; _ } ->
                 check Alcotest.bool "put stores" true stored
               | r -> Alcotest.failf "expected an ack, got %s" (show_response r));
              (match cok (Client.rpc c (Protocol.Cache_get { key })) with
               | Protocol.Cache_found { entry; _ } ->
                 check Alcotest.bool "entry survives the wire bit-exactly" true
                   (entry = sample_entry)
               | r -> Alcotest.failf "expected a hit, got %s" (show_response r)))))

let test_cache_get_after_optimize () =
  (* A served result must be retrievable through the cache verbs under
     the key the response itself names — that key is what the router
     hashes and what a peer's read-through asks for. *)
  with_store (fun store ->
      with_server ~store (fun h ->
          with_client h (fun c ->
              let p = expect_result (cok (Client.rpc c (optimize ~id:"seed" ()))) in
              check Alcotest.bool "response names its cache key" true
                (String.length p.Protocol.key > 0);
              match cok (Client.rpc c (Protocol.Cache_get { key = p.Protocol.key })) with
              | Protocol.Cache_found { entry; _ } ->
                check (Alcotest.float 0.0) "stored leakage matches the response"
                  p.Protocol.leakage_a entry.Result_store.total;
                check Alcotest.string "stored assignment matches the response"
                  p.Protocol.assignment entry.Result_store.assignment
              | r -> Alcotest.failf "expected a hit, got %s" (show_response r))))

let test_cache_put_without_store () =
  with_server (fun h ->
      with_client h (fun c ->
          match cok (Client.rpc c (Protocol.Cache_put { key = "ab"; entry = sample_entry })) with
          | Protocol.Cache_ack { stored; _ } ->
            check Alcotest.bool "no store means stored=false" false stored
          | r -> Alcotest.failf "expected an ack, got %s" (show_response r)))

let test_status_fields () =
  with_server (fun h ->
      with_client h (fun c ->
          let s1 = expect_status (cok (Client.rpc c Protocol.Status)) in
          check Alcotest.int "queue_depth mirrors in_flight" s1.Protocol.in_flight
            s1.Protocol.queue_depth;
          check Alcotest.bool "a daemon has no backends" true (s1.Protocol.backends = []);
          check Alcotest.bool "uptime is non-negative" true (s1.Protocol.uptime_s >= 0.0);
          let accepted_before = s1.Protocol.accepted in
          ignore (expect_result (cok (Client.rpc c (optimize ~id:"count-me" ()))));
          Thread.delay 0.05;
          let s2 = expect_status (cok (Client.rpc c Protocol.Status)) in
          check Alcotest.int "accepted counts the request" (accepted_before + 1)
            s2.Protocol.accepted;
          check Alcotest.bool "uptime is monotonic" true
            (s2.Protocol.uptime_s >= s1.Protocol.uptime_s)))

let test_drain_verb () =
  let h = start () in
  with_client h (fun c ->
      (* Naming a backend is a coordinator-only operation. *)
      (match cok (Client.rpc c (Protocol.Drain { backend = Some "unix:/x" })) with
       | Protocol.Error_response { message; _ } ->
         check Alcotest.bool "backend drain refused by a daemon" true
           (contains ~sub:"backend" message)
       | r -> Alcotest.failf "expected an error, got %s" (show_response r));
      match cok (Client.rpc c (Protocol.Drain { backend = None })) with
      | Protocol.Status_reply s ->
        check Alcotest.bool "drain acknowledged as draining" true s.Protocol.draining
      | r -> Alcotest.failf "expected a status reply, got %s" (show_response r));
  Thread.join h.thread

let free_tcp_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  Unix.close fd;
  port

let test_rapid_tcp_restart () =
  (* Serve on a TCP port, handle a connection, drain, and immediately
     rebind the same port: SO_REUSEADDR semantics must win over the old
     connection's TIME_WAIT or the restart dies with EADDRINUSE. *)
  let port = free_tcp_port () in
  let address = Protocol.Tcp ("127.0.0.1", port) in
  for round = 1 to 3 do
    let config = { (Server.default_config address) with Server.workers = Some 1 } in
    match Server.create ~libraries config with
    | Error msg -> Alcotest.failf "restart round %d: %s" round msg
    | Ok server ->
      let thread = Thread.create Server.run server in
      let c = cok (Client.connect address) in
      ignore (expect_status (cok (Client.rpc c Protocol.Status)));
      Client.close c;
      Server.request_drain server;
      Thread.join thread
  done

let test_listen_failure_leaks_no_fd () =
  (* Binding an impossible address must fail cleanly and release the
     socket; repeated failures would otherwise exhaust descriptors. *)
  for _ = 1 to 64 do
    match Server.listen (Protocol.Tcp ("127.0.0.1", 1)) with
    | Ok fd ->
      (* Running as root, low ports bind fine — just release and move on. *)
      Unix.close fd
    | Error msg ->
      check Alcotest.bool "bind failure is descriptive" true (String.length msg > 0)
  done

let () =
  Alcotest.run "standby.server"
    [
      ( "protocol",
        [
          quick "codec round trips" test_codec_roundtrip;
          quick "v2 codec round trips" test_codec_roundtrip_v2;
          quick "trace field round trips" test_trace_field_roundtrip;
          quick "version window" test_version_window;
          quick "codec rejects" test_codec_rejects;
          quick "pre-cluster status decodes" test_status_decodes_precluster;
          quick "addresses" test_addresses;
        ] );
      ( "serving",
        [
          quick "matches the offline engine" test_serve_matches_offline;
          quick "progress stream" test_progress_stream;
          quick "greedy submit with progress" test_greedy_submit_progress;
          quick "stats verb" test_stats_verb;
          quick "concurrent submits" test_concurrent_submits;
          quick "inline bench source" test_inline_bench_source;
        ] );
      ( "admission",
        [
          quick "deadline degrades" test_deadline_degrades;
          quick "queue-full backpressure" test_queue_full_backpressure;
          quick "drain finishes in-flight work" test_drain_finishes_in_flight;
          quick "disconnect cancels the job" test_disconnect_cancels_job;
        ] );
      ( "wire",
        [
          quick "malformed json keeps the connection" test_malformed_json_keeps_connection;
          quick "unknown version is answered" test_unknown_version;
          quick "oversized frame drops the connection" test_oversized_frame_drops_connection;
          quick "partial writes reassemble" test_partial_writes_reassemble;
        ] );
      ( "cluster-verbs",
        [
          quick "cache verbs round trip" test_cache_verbs_roundtrip;
          quick "cache-get finds a served result" test_cache_get_after_optimize;
          quick "cache-put without a store" test_cache_put_without_store;
          quick "status fields" test_status_fields;
          quick "drain over the wire" test_drain_verb;
          quick "rapid TCP restart" test_rapid_tcp_restart;
          quick "listen failure leaks no fd" test_listen_failure_leaks_no_fd;
        ] );
    ]

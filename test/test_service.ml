(* The batch subsystem: manifests, cache keys, the result store, the
   domain pool, deadline degradation and the engine end to end. *)

module Netlist = Standby_netlist.Netlist
module Gate_kind = Standby_netlist.Gate_kind
module Bench_io = Standby_netlist.Bench_io
module Process = Standby_device.Process
module Version = Standby_cells.Version
module Library = Standby_cells.Library
module Optimizer = Standby_opt.Optimizer
module Assignment = Standby_power.Assignment
module Benchmarks = Standby_circuits.Benchmarks
module Manifest = Standby_service.Manifest
module Cache_key = Standby_service.Cache_key
module Result_store = Standby_service.Result_store
module Pool = Standby_pool.Pool
module Engine = Standby_service.Engine

let check = Alcotest.check
let quick name f = Alcotest.test_case name `Quick f

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_error ~sub name = function
  | Ok _ -> Alcotest.failf "%s: expected an error mentioning %S" name sub
  | Error msg ->
    if not (contains ~sub msg) then
      Alcotest.failf "%s: error %S does not mention %S" name msg sub

let data_file name =
  let candidates = [ Filename.concat "../data" name; Filename.concat "data" name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "fixture %s not found" name

(* A unique throwaway directory (created on demand by its consumer). *)
let fresh_dir prefix =
  let file = Filename.temp_file prefix "" in
  Sys.remove file;
  file

let read_file path = In_channel.with_open_text path In_channel.input_all

(* Characterizing the default library is the expensive setup; share it. *)
let library = lazy (Library.build Process.default)

(* ------------------------------------------------------------------ *)
(* Manifest                                                             *)

let sample_manifest =
  {|# batch manifest
[defaults]
library = 2opt
method = heu2
time-limit = 0.5
penalty = 0.08

[job first]
circuit = c432

[job second]
file = sub/c17.bench
method = exact
penalty = 0.02
deadline = 30

[job third]
circuit = c880
method = hc
rounds = 3

[job fourth]
circuit = c432
method = greedy
time-limit = 4
|}

let test_manifest_parse () =
  match Manifest.parse ~dir:"/anchor" sample_manifest with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok jobs ->
    check (Alcotest.list Alcotest.string) "ids, in manifest order"
      [ "first"; "second"; "third"; "fourth" ]
      (List.map (fun j -> j.Manifest.id) jobs);
    let first, second, third, fourth =
      match jobs with [ a; b; c; d ] -> (a, b, c, d) | _ -> assert false
    in
    check Alcotest.bool "defaults apply" true
      (first.Manifest.mode = Version.two_option_mode
      && first.Manifest.method_ = Optimizer.Heuristic_2 { time_limit_s = 0.5 }
      && first.Manifest.penalty = 0.08
      && first.Manifest.deadline_s = None
      && first.Manifest.source = Manifest.Builtin "c432");
    check Alcotest.bool "per-job overrides win" true
      (second.Manifest.method_ = Optimizer.Exact
      && second.Manifest.penalty = 0.02
      && second.Manifest.deadline_s = Some 30.0);
    check Alcotest.string "relative file anchored to dir" "/anchor/sub/c17.bench"
      (match second.Manifest.source with Manifest.File p -> p | _ -> "not a file");
    check Alcotest.bool "job keys fall back to defaults" true
      (third.Manifest.method_ = Optimizer.Hill_climb { time_limit_s = 0.5; max_rounds = 3 });
    check Alcotest.bool "greedy reuses the time-limit key as its budget" true
      (fourth.Manifest.method_ = Optimizer.Greedy { time_budget_s = 4.0 })

let test_manifest_errors () =
  let parse = Manifest.parse ?dir:None in
  check_error ~sub:"no jobs" "empty" (parse "");
  check_error ~sub:"duplicate job" "duplicate"
    (parse "[job a]\ncircuit = c432\n[job a]\ncircuit = c432\n");
  check_error ~sub:"sets both" "circuit and file"
    (parse "[job a]\ncircuit = c432\nfile = x.bench\n");
  check_error ~sub:"needs 'circuit" "no source" (parse "[job a]\npenalty = 0.1\n");
  check_error ~sub:"line 2: unknown key" "unknown key"
    (parse "[job a]\nfrobnicate = yes\ncircuit = c432\n");
  check_error ~sub:"outside" "key at toplevel" (parse "penalty = 0.1\n");
  check_error ~sub:"not allowed in [defaults]" "circuit in defaults"
    (parse "[defaults]\ncircuit = c432\n");
  check_error ~sub:"unknown method" "bad method"
    (parse "[job a]\ncircuit = c432\nmethod = annealing\n");
  check_error ~sub:"unknown library mode" "bad mode"
    (parse "[job a]\ncircuit = c432\nlibrary = 9opt\n");
  check_error ~sub:"deadline must be positive" "zero deadline"
    (parse "[job a]\ncircuit = c432\ndeadline = 0\n");
  check_error ~sub:"unterminated" "unterminated header" (parse "[job a\ncircuit = c432\n");
  check_error ~sub:"malformed number" "bad float"
    (parse "[job a]\ncircuit = c432\npenalty = lots\n")

(* ------------------------------------------------------------------ *)
(* Cache keys                                                           *)

(* Three inputs, two parallel gates, one output gate — small enough to
   build by hand twice with the parallel gates swapped. *)
let diamond ~swap_order ~names () =
  let b = Netlist.Builder.create ~name:(if names then "one" else "two") () in
  let input i = Netlist.Builder.add_input ~name:(Printf.sprintf "%s%d" i 0) b in
  let a = input (if names then "a" else "p") in
  let bb = input (if names then "b" else "q") in
  let c = input (if names then "c" else "r") in
  let x, y =
    if swap_order then begin
      let y = Netlist.Builder.add_gate b Gate_kind.Nor2 [| bb; c |] in
      let x = Netlist.Builder.add_gate b Gate_kind.Nand2 [| a; bb |] in
      (x, y)
    end
    else begin
      let x = Netlist.Builder.add_gate b Gate_kind.Nand2 [| a; bb |] in
      let y = Netlist.Builder.add_gate b Gate_kind.Nor2 [| bb; c |] in
      (x, y)
    end
  in
  let out = Netlist.Builder.add_gate b Gate_kind.Nand2 [| x; y |] in
  Netlist.Builder.mark_output b out;
  (b, a)

let finish (b, _) = Netlist.Builder.finish b

let test_canonical_invariance () =
  let net1 = finish (diamond ~swap_order:false ~names:true ()) in
  let net2 = finish (diamond ~swap_order:true ~names:false ()) in
  check Alcotest.string "gate insertion order and names are irrelevant"
    (Cache_key.canonical net1) (Cache_key.canonical net2);
  (* Dead logic — a gate feeding no output — must not affect the key. *)
  let b, a = diamond ~swap_order:false ~names:true () in
  let _dead = Netlist.Builder.add_gate b Gate_kind.Inv [| a |] in
  let net3 = Netlist.Builder.finish b in
  check Alcotest.string "unreachable logic is irrelevant" (Cache_key.canonical net1)
    (Cache_key.canonical net3);
  (* But an actual structural change must show. *)
  let b, _ = diamond ~swap_order:false ~names:true () in
  let inv = Netlist.Builder.add_gate b Gate_kind.Inv [| 0 |] in
  Netlist.Builder.mark_output b inv;
  let net4 = Netlist.Builder.finish b in
  check Alcotest.bool "structure changes the rendering" false
    (Cache_key.canonical net1 = Cache_key.canonical net4)

let test_digest_sensitivity () =
  let net = finish (diamond ~swap_order:false ~names:true ()) in
  let digest ?(process = Process.default) ?(mode = Version.default_mode) ?(penalty = 0.05)
      ?(method_ = Optimizer.Heuristic_1) () =
    Cache_key.digest ~net ~process ~mode ~penalty ~method_
  in
  let base = digest () in
  check Alcotest.string "digest is deterministic" base (digest ());
  check Alcotest.string "equal structure, equal digest" base
    (Cache_key.digest
       ~net:(finish (diamond ~swap_order:true ~names:false ()))
       ~process:Process.default ~mode:Version.default_mode ~penalty:0.05
       ~method_:Optimizer.Heuristic_1);
  let differs name key = check Alcotest.bool name false (key = base) in
  differs "process parameter misses"
    (digest ~process:{ Process.default with Process.vdd = Process.default.Process.vdd +. 0.05 } ());
  differs "penalty misses" (digest ~penalty:0.06 ());
  differs "library mode misses" (digest ~mode:Version.two_option_mode ());
  differs "method misses" (digest ~method_:(Optimizer.Heuristic_2 { time_limit_s = 1.0 }) ());
  differs "method parameter misses"
    (digest ~method_:(Optimizer.Hill_climb { time_limit_s = 1.0; max_rounds = 4 }) ());
  check Alcotest.bool "method parameters are part of the descriptor" false
    (Cache_key.method_descriptor (Optimizer.Heuristic_2 { time_limit_s = 1.0 })
    = Cache_key.method_descriptor (Optimizer.Heuristic_2 { time_limit_s = 2.0 }))

(* ------------------------------------------------------------------ *)
(* Result store                                                         *)

let sample_entry =
  {
    Result_store.method_name = "heu1";
    penalty = 0.05;
    budget = 1.25;
    delay = 1.2000000000000003;
    delay_fast = 1.0;
    delay_slow = 3.5;
    total = 1.234e-6;
    isub = 1.0e-6;
    igate = 0.234e-6;
    runtime_s = 0.75;
    assignment = "vector 0101\nchoices 0 0 1 2\n";
  }

let test_store_roundtrip () =
  let store = Result_store.create ~dir:(fresh_dir "standbyopt-store") () in
  let key = String.make 32 'a' in
  check Alcotest.bool "missing key is a miss" true (Result_store.find store ~key = None);
  Result_store.store store ~key sample_entry;
  (match Result_store.find store ~key with
   | None -> Alcotest.fail "stored entry not found"
   | Some e ->
     (* %.17g round-trips doubles exactly, so equality is structural. *)
     check Alcotest.bool "entry survives the round trip" true (e = sample_entry));
  (* Corruption degrades to a miss, never an error. *)
  Out_channel.with_open_text
    (Filename.concat (Result_store.dir store) (key ^ ".result"))
    (fun oc -> Out_channel.output_string oc "not a result file\n");
  check Alcotest.bool "corrupted entry is a miss" true (Result_store.find store ~key = None);
  Result_store.store store ~key sample_entry;
  Result_store.store store ~key:(String.make 32 'b') sample_entry;
  check Alcotest.int "clear removes every entry" 2 (Result_store.clear store);
  check Alcotest.bool "cleared store is empty" true (Result_store.find store ~key = None)


(* The cap is LRU: a [find] freshens its entry, so the evictee is the
   least recently *used* entry, not merely the oldest write. *)
let test_store_lru () =
  let store =
    Result_store.create ~max_entries:2 ~dir:(fresh_dir "standbyopt-lru") ()
  in
  check Alcotest.(option int) "cap recorded" (Some 2) (Result_store.max_entries store);
  let key c = String.make 32 c in
  let present c = Result_store.find store ~key:(key c) <> None in
  Result_store.store store ~key:(key 'a') sample_entry;
  Unix.sleepf 0.02;
  Result_store.store store ~key:(key 'b') sample_entry;
  Unix.sleepf 0.02;
  (* Touch 'a' so 'b' becomes the least recently used entry. *)
  check Alcotest.bool "freshening hit" true (present 'a');
  Unix.sleepf 0.02;
  Result_store.store store ~key:(key 'c') sample_entry;
  check Alcotest.bool "recently used entry survives the cap" true (present 'a');
  check Alcotest.bool "least recently used entry is evicted" false (present 'b');
  check Alcotest.bool "new entry is present" true (present 'c')

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)

let test_pool_map () =
  let input = Array.init 100 (fun i -> i) in
  let output = Pool.map ~workers:4 (fun i -> i * i) input in
  check (Alcotest.array Alcotest.int) "order preserved" (Array.map (fun i -> i * i) input)
    output;
  match Pool.map ~workers:2 (fun i -> if i = 5 then failwith "boom" else i) input with
  | _ -> Alcotest.fail "expected the task exception to re-raise"
  | exception Failure msg -> check Alcotest.string "first task exception re-raised" "boom" msg

let test_pool_submit_wait () =
  let pool = Pool.create ~workers:3 () in
  check Alcotest.int "worker count" 3 (Pool.workers pool);
  let counter = Atomic.make 0 in
  for _ = 1 to 50 do
    Pool.submit pool (fun () -> Atomic.incr counter)
  done;
  Pool.wait pool;
  check Alcotest.int "every task ran" 50 (Atomic.get counter);
  (* Exceptions must not kill workers. *)
  Pool.submit pool (fun () -> failwith "swallowed");
  Pool.submit pool (fun () -> Atomic.incr counter);
  Pool.wait pool;
  check Alcotest.int "worker survives a task exception" 51 (Atomic.get counter);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Idempotent. *)
  match Pool.submit pool (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Assignment serialization                                             *)

let test_assignment_roundtrip () =
  let lib = Lazy.force library in
  let net = Result.get_ok (Bench_io.of_string (read_file (data_file "c17.bench"))) in
  let result = Optimizer.run lib net ~penalty:0.1 Optimizer.Heuristic_1 in
  let a = result.Optimizer.assignment in
  match Assignment.of_string lib net (Assignment.to_string a) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok b ->
    check (Alcotest.array Alcotest.bool) "input vector" a.Assignment.input_vector
      b.Assignment.input_vector;
    check (Alcotest.array Alcotest.int) "option choices" a.Assignment.option_choice
      b.Assignment.option_choice;
    check (Alcotest.array Alcotest.bool) "node values re-derived" a.Assignment.node_values
      b.Assignment.node_values;
    check (Alcotest.array Alcotest.int) "gate states re-derived" a.Assignment.gate_state
      b.Assignment.gate_state

let test_assignment_rejects () =
  let lib = Lazy.force library in
  let net = Result.get_ok (Bench_io.of_string (read_file (data_file "c17.bench"))) in
  let reject name text = check_error ~sub:"" name (Assignment.of_string lib net text) in
  reject "wrong vector length" "vector 01\nchoices 0 0 0 0 0 0\n";
  reject "wrong choice count" "vector 01010\nchoices 0 0\n";
  reject "out-of-range choice" "vector 01010\nchoices 99 0 0 0 0 0\n";
  reject "garbage" "hello\n"

(* ------------------------------------------------------------------ *)
(* Deadline degradation                                                 *)

let test_degraded_flag () =
  let lib = Lazy.force library in
  let net = Benchmarks.circuit "c880" in
  (* Exact search on hundreds of gates cannot finish inside a zero
     deadline — but it must still return a feasible incumbent. *)
  let r = Optimizer.run ~deadline_s:0.0 lib net ~penalty:0.1 Optimizer.Exact in
  check Alcotest.bool "deadline cut marks the result degraded" true r.Optimizer.degraded;
  check Alcotest.bool "degraded result stays delay-feasible" true
    (r.Optimizer.delay <= r.Optimizer.budget +. 1e-9);
  let full = Optimizer.run lib net ~penalty:0.1 Optimizer.Heuristic_1 in
  check Alcotest.bool "no deadline, not degraded" false full.Optimizer.degraded;
  (* A generous deadline that the method beats on its own is not a cut. *)
  let easy = Optimizer.run ~deadline_s:3600.0 lib net ~penalty:0.1 Optimizer.Heuristic_1 in
  check Alcotest.bool "unexercised deadline, not degraded" false easy.Optimizer.degraded

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)

let engine_job ~id ?deadline_s ?(method_ = Optimizer.Heuristic_1) ?(penalty = 0.1) source =
  {
    Manifest.id;
    source;
    mode = Version.default_mode;
    method_;
    penalty;
    deadline_s;
    process_file = None;
  }

let test_engine_cache_flow () =
  let c17 = data_file "c17.bench" in
  let jobs =
    [
      engine_job ~id:"c17-a" ~penalty:0.05 (Manifest.File c17);
      engine_job ~id:"c17-b" ~penalty:0.15 (Manifest.File c17);
      engine_job ~id:"c432" (Manifest.Builtin "c432");
      engine_job ~id:"c880-tight" ~method_:Optimizer.Exact ~deadline_s:0.01
        (Manifest.Builtin "c880");
    ]
  in
  let store = Result_store.create ~dir:(fresh_dir "standbyopt-cache") () in
  let cold = Engine.run ~workers:2 ~store jobs in
  check Alcotest.int "cold run computes" 3 cold.Engine.computed;
  check Alcotest.int "cold run has no hits" 0 cold.Engine.cached;
  check Alcotest.int "deadline job degrades" 1 cold.Engine.degraded;
  check Alcotest.int "nothing fails" 0 cold.Engine.failed;
  let entries dir =
    Array.length
      (Array.of_list
         (List.filter
            (fun f -> Filename.check_suffix f ".result")
            (Array.to_list (Sys.readdir dir))))
  in
  check Alcotest.int "degraded results are not persisted" 3
    (entries (Result_store.dir store));
  let warm = Engine.run ~workers:2 ~store jobs in
  check Alcotest.int "warm run hits" 3 warm.Engine.cached;
  check Alcotest.int "warm run recomputes nothing" 0 warm.Engine.computed;
  check Alcotest.int "degraded job reruns every time" 1 warm.Engine.degraded;
  check Alcotest.int "store is unchanged" 3 (entries (Result_store.dir store));
  Array.iter
    (fun o ->
      match o.Engine.status with
      | Engine.Failed msg -> Alcotest.failf "job %s failed: %s" o.Engine.job.Manifest.id msg
      | _ ->
        check Alcotest.bool "every outcome carries a result" true (o.Engine.result <> None))
    warm.Engine.outcomes;
  (* Outcomes come back in manifest order regardless of completion order. *)
  check (Alcotest.list Alcotest.string) "manifest order preserved"
    (List.map (fun j -> j.Manifest.id) jobs)
    (Array.to_list (Array.map (fun o -> o.Engine.job.Manifest.id) warm.Engine.outcomes));
  let rendered = Engine.table warm in
  List.iter
    (fun sub ->
      check Alcotest.bool (Printf.sprintf "table mentions %s" sub) true
        (contains ~sub rendered))
    [ "c17-a"; "c880-tight"; "cached"; "degraded" ];
  let csv = Engine.csv warm in
  check Alcotest.bool "csv has the header" true (contains ~sub:"job,circuit" csv);
  check Alcotest.bool "csv carries the cache key" true
    (match warm.Engine.outcomes.(0).Engine.key with
     | Some key -> contains ~sub:key csv
     | None -> false)

let test_engine_failure () =
  let summary =
    Engine.run ~workers:1
      [
        engine_job ~id:"ghost" (Manifest.File "/nonexistent/ghost.bench");
        engine_job ~id:"real" (Manifest.File (data_file "c17.bench"));
      ]
  in
  check Alcotest.int "bad path fails its job only" 1 summary.Engine.failed;
  check Alcotest.int "good job still computes" 1 summary.Engine.computed;
  let ghost = summary.Engine.outcomes.(0) in
  check Alcotest.bool "failed outcome has no key or result" true
    (ghost.Engine.key = None && ghost.Engine.result = None)

let () =
  Alcotest.run "standby.service"
    [
      ("manifest", [ quick "parse" test_manifest_parse; quick "errors" test_manifest_errors ]);
      ( "cache-key",
        [
          quick "canonical invariance" test_canonical_invariance;
          quick "digest sensitivity" test_digest_sensitivity;
        ] );
      ( "result-store",
        [
          quick "roundtrip, corruption, clear" test_store_roundtrip;
          quick "lru eviction under a cap" test_store_lru;
        ] );
      ( "pool",
        [ quick "map" test_pool_map; quick "submit and wait" test_pool_submit_wait ] );
      ( "assignment-io",
        [
          quick "roundtrip" test_assignment_roundtrip;
          quick "rejects bad payloads" test_assignment_rejects;
        ] );
      ("degradation", [ quick "deadline flag" test_degraded_flag ]);
      ( "engine",
        [
          quick "compute then cache" test_engine_cache_flow;
          quick "failure isolation" test_engine_failure;
        ] );
    ]

(* Tests for standby_sim: two- and three-valued simulation. *)

module Gate_kind = Standby_netlist.Gate_kind
module Netlist = Standby_netlist.Netlist
module Logic = Standby_sim.Logic
module Simulator = Standby_sim.Simulator
module Prng = Standby_util.Prng

let check = Alcotest.check

(* ------------------------------- Logic ---------------------------- *)

let trit = Alcotest.testable Logic.pp Logic.equal

let test_logic_not () =
  check trit "not 1" Logic.False (Logic.lnot Logic.True);
  check trit "not 0" Logic.True (Logic.lnot Logic.False);
  check trit "not X" Logic.Unknown (Logic.lnot Logic.Unknown)

let test_logic_nand_controlling () =
  (* A controlling 0 decides the output despite unknowns. *)
  check trit "nand(0,X)" Logic.True (Logic.nand [| Logic.False; Logic.Unknown |]);
  check trit "nand(1,X)" Logic.Unknown (Logic.nand [| Logic.True; Logic.Unknown |]);
  check trit "nand(1,1)" Logic.False (Logic.nand [| Logic.True; Logic.True |])

let test_logic_nor_controlling () =
  check trit "nor(1,X)" Logic.False (Logic.nor [| Logic.True; Logic.Unknown |]);
  check trit "nor(0,X)" Logic.Unknown (Logic.nor [| Logic.False; Logic.Unknown |]);
  check trit "nor(0,0)" Logic.True (Logic.nor [| Logic.False; Logic.False |])

let test_logic_of_to_bool () =
  check (Alcotest.option Alcotest.bool) "to_bool 1" (Some true) (Logic.to_bool Logic.True);
  check (Alcotest.option Alcotest.bool) "to_bool X" None (Logic.to_bool Logic.Unknown);
  check trit "of_bool" Logic.True (Logic.of_bool true);
  check Alcotest.bool "is_known" false (Logic.is_known Logic.Unknown)

(* ----------------------------- Simulator -------------------------- *)

(* Reference evaluation by recursive descent, independent of the
   iter_gates order. *)
let reference_eval net inputs =
  let input_ids = Netlist.inputs net in
  let cache = Hashtbl.create 64 in
  Array.iteri (fun i id -> Hashtbl.replace cache id inputs.(i)) input_ids;
  let rec value id =
    match Hashtbl.find_opt cache id with
    | Some v -> v
    | None ->
      let v =
        match Netlist.node net id with
        | Netlist.Primary_input -> assert false
        | Netlist.Cell { kind; fanin } -> Gate_kind.eval kind (Array.map value fanin)
      in
      Hashtbl.replace cache id v;
      v
  in
  Array.init (Netlist.node_count net) value

let random_circuit seed =
  Standby_circuits.Random_logic.generate ~seed ~inputs:8 ~gates:40 ()

let test_eval_matches_reference =
  QCheck.Test.make ~count:50 ~name:"eval matches recursive reference"
    QCheck.(make Gen.(pair (int_range 0 1000) (int_range 0 255)))
    (fun (seed, v) ->
      let net = random_circuit seed in
      let inputs = Array.init 8 (fun i -> (v lsr i) land 1 = 1) in
      Simulator.eval net inputs = reference_eval net inputs)

let test_eval_input_mismatch () =
  let net = random_circuit 1 in
  Alcotest.check_raises "wrong input count"
    (Invalid_argument "Simulator.eval: input count mismatch") (fun () ->
      ignore (Simulator.eval net [| true |]))

let test_partial_agrees_with_full =
  QCheck.Test.make ~count:50 ~name:"eval_partial with full info equals eval"
    QCheck.(make Gen.(pair (int_range 0 1000) (int_range 0 255)))
    (fun (seed, v) ->
      let net = random_circuit seed in
      let inputs = Array.init 8 (fun i -> (v lsr i) land 1 = 1) in
      let trits = Array.map Logic.of_bool inputs in
      let full = Simulator.eval net inputs in
      let partial = Simulator.eval_partial net trits in
      Array.for_all2 (fun b t -> Logic.to_bool t = Some b) full partial)

let test_partial_sound =
  (* Whatever eval_partial claims to know must hold for every completion
     of the unknown inputs. *)
  QCheck.Test.make ~count:30 ~name:"partial values sound for all completions"
    QCheck.(make Gen.(triple (int_range 0 500) (int_range 0 255) (int_range 0 255)))
    (fun (seed, known_mask, values) ->
      let net = random_circuit seed in
      let trits =
        Array.init 8 (fun i ->
            if (known_mask lsr i) land 1 = 1 then Logic.of_bool ((values lsr i) land 1 = 1)
            else Logic.Unknown)
      in
      let partial = Simulator.eval_partial net trits in
      let sound = ref true in
      for completion = 0 to 255 do
        let inputs =
          Array.init 8 (fun i ->
              match trits.(i) with
              | Logic.True -> true
              | Logic.False -> false
              | Logic.Unknown -> (completion lsr i) land 1 = 1)
        in
        let full = Simulator.eval net inputs in
        Array.iteri
          (fun id t ->
            match Logic.to_bool t with
            | Some claimed -> if claimed <> full.(id) then sound := false
            | None -> ())
          partial
      done;
      !sound)

(* --------------------------- Workspace ---------------------------- *)

module Workspace = Simulator.Workspace

(* Random assume/retract walk: after every step the workspace's node
   values must equal a fresh eval_partial over the same partial input
   assignment, and on full assignment they must match eval. *)
let test_workspace_matches_oracle =
  QCheck.Test.make ~count:40 ~name:"workspace assume/retract matches eval_partial"
    QCheck.(make Gen.(pair (int_range 0 1000) (int_range 0 1_000_000)))
    (fun (seed, walk) ->
      let net = random_circuit seed in
      let rng = Prng.create ~seed:walk in
      let ws = Workspace.create net in
      let trits = Array.make 8 Logic.Unknown in
      let assumed = ref [] in
      let depth () = List.length !assumed in
      let agrees () =
        let oracle = Simulator.eval_partial net trits in
        Array.for_all2 Logic.equal oracle (Workspace.values ws)
      in
      let ok = ref (agrees ()) in
      for _ = 1 to 60 do
        if !ok then begin
          if depth () > 0 && (depth () = 8 || Prng.bool rng) then begin
            let pos = List.hd !assumed in
            assumed := List.tl !assumed;
            Workspace.retract ws;
            trits.(pos) <- Logic.Unknown
          end
          else begin
            let free =
              Array.to_list (Array.init 8 Fun.id)
              |> List.filter (fun p -> trits.(p) = Logic.Unknown)
            in
            let pos = List.nth free (Prng.int rng ~bound:(List.length free)) in
            let v = Logic.of_bool (Prng.bool rng) in
            Workspace.assume ws pos v;
            trits.(pos) <- v;
            assumed := pos :: !assumed
          end;
          ok := agrees () && Workspace.depth ws = depth ()
        end
      done;
      !ok)

let test_workspace_full_assignment_matches_eval =
  QCheck.Test.make ~count:40 ~name:"fully assumed workspace equals eval"
    QCheck.(make Gen.(pair (int_range 0 1000) (int_range 0 255)))
    (fun (seed, v) ->
      let net = random_circuit seed in
      let ws = Workspace.create net in
      let inputs = Array.init 8 (fun i -> (v lsr i) land 1 = 1) in
      Array.iteri (fun pos b -> Workspace.assume ws pos (Logic.of_bool b)) inputs;
      let full = Simulator.eval net inputs in
      let ok =
        Array.for_all2
          (fun b t -> Logic.to_bool t = Some b)
          full (Workspace.values ws)
      in
      (* Unwind and confirm the workspace is clean again. *)
      for _ = 1 to 8 do
        Workspace.retract ws
      done;
      ok
      && Workspace.depth ws = 0
      && Array.for_all (fun t -> t = Logic.Unknown) (Workspace.values ws))

let test_workspace_touch_covers_changes () =
  (* Every gate whose value changes during an assume must be reported
     through on_touch (the bound-maintenance contract). *)
  let net = random_circuit 7 in
  let ws = Workspace.create net in
  let touched = Hashtbl.create 16 in
  let before = Array.copy (Workspace.values ws) in
  Workspace.assume ~on_touch:(fun id -> Hashtbl.replace touched id ()) ws 0 Logic.True;
  let after = Workspace.values ws in
  Array.iteri
    (fun id b ->
      if not (Logic.equal b after.(id)) && not (Netlist.is_input net id) then
        check Alcotest.bool (Printf.sprintf "gate %d touched" id) true
          (Hashtbl.mem touched id))
    before

let test_workspace_rejects_misuse () =
  let net = random_circuit 1 in
  let ws = Workspace.create net in
  Alcotest.check_raises "unknown value"
    (Invalid_argument "Workspace.assume: value must be known") (fun () ->
      Workspace.assume ws 0 Logic.Unknown);
  Workspace.assume ws 0 Logic.True;
  Alcotest.check_raises "double assignment"
    (Invalid_argument "Workspace.assume: input already assigned") (fun () ->
      Workspace.assume ws 0 Logic.False);
  Workspace.retract ws;
  Alcotest.check_raises "empty retract"
    (Invalid_argument "Workspace.retract: nothing to retract") (fun () ->
      Workspace.retract ws)

let test_gate_states_convention () =
  (* gate_state packs fanin 0 as the MSB. *)
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b in
  let c = Netlist.Builder.add_input b in
  let g = Netlist.Builder.add_gate b Gate_kind.Nand2 [| a; c |] in
  Netlist.Builder.mark_output b g;
  let net = Netlist.Builder.finish b in
  let values = Simulator.eval net [| true; false |] in
  check Alcotest.int "state 10" 2 (Simulator.gate_state net values g);
  let states = Simulator.gate_states net values in
  check Alcotest.int "inputs report 0" 0 states.(a);
  check Alcotest.int "array agrees" 2 states.(g)

let test_output_vector () =
  let net = random_circuit 3 in
  let rng = Prng.create ~seed:4 in
  let inputs = Array.init 8 (fun _ -> Prng.bool rng) in
  let values = Simulator.eval net inputs in
  let out = Simulator.output_vector net inputs in
  Array.iteri
    (fun i o -> check Alcotest.bool "output matches values" values.(o) out.(i))
    (Netlist.outputs net)

(* ----------------------------- Bitsim ----------------------------- *)

module Bitsim = Standby_sim.Bitsim

let test_popcount () =
  check Alcotest.int "zero" 0 (Bitsim.popcount 0);
  check Alcotest.int "one" 1 (Bitsim.popcount 1);
  check Alcotest.int "sign bit counts" 63 (Bitsim.popcount (-1));
  check Alcotest.int "alternating" 31 (Bitsim.popcount (max_int land 0x2AAAAAAAAAAAAAAA));
  let naive x =
    let n = ref 0 in
    for b = 0 to 62 do
      if (x lsr b) land 1 = 1 then incr n
    done;
    !n
  in
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Int64.to_int (Prng.next_int64 rng) in
    check Alcotest.int "matches naive" (naive x) (Bitsim.popcount x)
  done

let test_block_geometry () =
  check Alcotest.int "lanes" 63 Bitsim.lanes;
  check Alcotest.int "one block" 1 (Bitsim.block_count ~vectors:63);
  check Alcotest.int "partial tail" 2 (Bitsim.block_count ~vectors:64);
  check Alcotest.int "full block lanes" 63 (Bitsim.lanes_in_block ~vectors:126 ~block:0);
  check Alcotest.int "tail lanes" 1 (Bitsim.lanes_in_block ~vectors:64 ~block:1);
  check Alcotest.int "full mask" (-1) (Bitsim.lane_mask ~lanes:63);
  check Alcotest.int "partial mask" 7 (Bitsim.lane_mask ~lanes:3);
  Alcotest.check_raises "vectors must be positive"
    (Invalid_argument "Bitsim.block_count: vectors must be positive") (fun () ->
      ignore (Bitsim.block_count ~vectors:0))

(* The packed engine's lanes must be exactly the scalar simulator's
   results on the lane's own input vector — the central correctness
   property of the whole bit-parallel path. *)
let lanes_match_scalar net seed block =
  let bsim = Bitsim.create net in
  Bitsim.load_block bsim ~seed ~block;
  Bitsim.eval bsim;
  let ok = ref true in
  for lane = 0 to Bitsim.lanes - 1 do
    let scalar = Simulator.eval net (Bitsim.lane_vector bsim ~lane) in
    if not (Array.for_all2 ( = ) scalar (Bitsim.lane_values bsim ~lane)) then ok := false
  done;
  !ok

let test_bitsim_matches_scalar_random =
  QCheck.Test.make ~count:50 ~name:"bitsim lanes equal scalar eval (random netlists)"
    QCheck.(make Gen.(pair (int_range 0 1000) (int_range 0 50)))
    (fun (seed, block) -> lanes_match_scalar (random_circuit seed) 0x5eed block)

let test_bitsim_matches_scalar_iscas () =
  List.iter
    (fun name ->
      check Alcotest.bool name true
        (lanes_match_scalar (Standby_circuits.Benchmarks.circuit name) 0x5eed 0))
    Standby_circuits.Benchmarks.names

let test_bitsim_state_counts =
  (* iter_state_counts histograms vs a scalar per-lane gate_states walk,
     including partial final lanes. *)
  QCheck.Test.make ~count:50 ~name:"state counts equal scalar histogram"
    QCheck.(make Gen.(triple (int_range 0 1000) (int_range 0 20) (int_range 1 63)))
    (fun (seed, block, valid) ->
      let net = random_circuit seed in
      let bsim = Bitsim.create net in
      Bitsim.load_block bsim ~seed:7 ~block;
      Bitsim.eval bsim;
      (* Scalar reference: histogram of gate states over the valid lanes. *)
      let expected = Hashtbl.create 64 in
      for lane = 0 to valid - 1 do
        let values = Simulator.eval net (Bitsim.lane_vector bsim ~lane) in
        let states = Simulator.gate_states net values in
        Netlist.iter_gates net (fun id _ _ ->
            let key = (id, states.(id)) in
            Hashtbl.replace expected key
              (1 + Option.value ~default:0 (Hashtbl.find_opt expected key)))
      done;
      let ok = ref true in
      Bitsim.iter_state_counts bsim ~lanes:valid (fun id kind counts ->
          for s = 0 to Gate_kind.state_count kind - 1 do
            let want = Option.value ~default:0 (Hashtbl.find_opt expected (id, s)) in
            if counts.(s) <> want then ok := false
          done);
      !ok)

let test_bitsim_deterministic_load () =
  (* Lanes are a pure function of (seed, block): reloading reproduces the
     input words, and different blocks differ. *)
  let net = random_circuit 5 in
  let bsim = Bitsim.create net in
  Bitsim.load_block bsim ~seed:42 ~block:3;
  let w0 = Array.init (Netlist.input_count net) (Bitsim.input_word bsim) in
  Bitsim.load_block bsim ~seed:42 ~block:4;
  let w1 = Array.init (Netlist.input_count net) (Bitsim.input_word bsim) in
  Bitsim.load_block bsim ~seed:42 ~block:3;
  let w2 = Array.init (Netlist.input_count net) (Bitsim.input_word bsim) in
  check Alcotest.bool "reload reproduces" true (w0 = w2);
  check Alcotest.bool "blocks differ" true (w0 <> w1)

let test_bitsim_words_evaluated () =
  let net = random_circuit 2 in
  let bsim = Bitsim.create net in
  check Alcotest.int "starts at zero" 0 (Bitsim.words_evaluated bsim);
  Bitsim.load_block bsim ~seed:1 ~block:0;
  Bitsim.eval bsim;
  Bitsim.eval bsim;
  check Alcotest.int "counts gate words" (2 * Netlist.gate_count net)
    (Bitsim.words_evaluated bsim)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "standby_sim"
    [
      ( "logic",
        [
          quick "not" test_logic_not;
          quick "nand controlling" test_logic_nand_controlling;
          quick "nor controlling" test_logic_nor_controlling;
          quick "bool conversions" test_logic_of_to_bool;
        ] );
      ( "simulator",
        [
          QCheck_alcotest.to_alcotest test_eval_matches_reference;
          quick "input mismatch" test_eval_input_mismatch;
          QCheck_alcotest.to_alcotest test_partial_agrees_with_full;
          QCheck_alcotest.to_alcotest test_partial_sound;
          quick "gate states convention" test_gate_states_convention;
          quick "output vector" test_output_vector;
        ] );
      ( "workspace",
        [
          QCheck_alcotest.to_alcotest test_workspace_matches_oracle;
          QCheck_alcotest.to_alcotest test_workspace_full_assignment_matches_eval;
          quick "on_touch covers changes" test_workspace_touch_covers_changes;
          quick "rejects misuse" test_workspace_rejects_misuse;
        ] );
      ( "bitsim",
        [
          quick "popcount" test_popcount;
          quick "block geometry" test_block_geometry;
          QCheck_alcotest.to_alcotest test_bitsim_matches_scalar_random;
          quick "lanes match scalar on ISCAS" test_bitsim_matches_scalar_iscas;
          QCheck_alcotest.to_alcotest test_bitsim_state_counts;
          quick "deterministic load" test_bitsim_deterministic_load;
          quick "words evaluated" test_bitsim_words_evaluated;
        ] );
    ]

(* Tests for standby_telemetry: the JSON codec, log-level filtering,
   histogram bucket boundaries, span nesting / self-time, and trace-file
   well-formedness under concurrent writes from a domain pool. *)

module Json = Standby_telemetry.Json
module Log = Standby_telemetry.Log
module Metrics = Standby_telemetry.Metrics
module Telemetry = Standby_telemetry.Telemetry
module Trace = Standby_telemetry.Trace
module Pool = Standby_pool.Pool

let check = Alcotest.check

let with_temp_file f =
  let path = Filename.temp_file "standby_telemetry" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* ------------------------------- JSON ------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.Float 1.5);
        ("c", Json.String "x\"y\nz");
        ("d", Json.List [ Json.Bool true; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.String "v") ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok parsed ->
    check Alcotest.bool "round trips" true (parsed = doc);
    check Alcotest.(option int) "member a"
      (Some 3)
      (Option.bind (Json.member "a" parsed) Json.to_int_opt)

let test_json_nan_is_null () =
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_rejects_garbage () =
  (match Json.of_string "{\"a\":}" with
   | Ok _ -> Alcotest.fail "accepted {\"a\":}"
   | Error _ -> ());
  match Json.of_string "{} trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing bytes"
  | Error _ -> ()

(* ------------------------------- Log ------------------------------- *)

(* Capture records in memory; restore the default stderr configuration
   afterwards so other tests keep their readable output. *)
let with_captured_log level f =
  let records = ref [] in
  let sink lvl ~ts:_ ~msg ~fields = records := (lvl, msg, fields) :: !records in
  let old_level = Log.get_level () in
  Log.set_sinks [ sink ];
  Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Log.set_sinks [ Log.stderr_sink ];
      Log.set_level old_level)
    (fun () ->
      f ();
      List.rev !records)

let test_log_level_filtering () =
  let records =
    with_captured_log Log.Warn (fun () ->
        Log.debug "dropped %d" 1;
        Log.info "dropped too";
        Log.warn "kept %s" "warn" ~fields:[ Log.int "n" 7 ];
        Log.err "kept err")
  in
  check Alcotest.int "only warn and err pass" 2 (List.length records);
  (match records with
   | [ (Log.Warn, "kept warn", [ ("n", Json.Int 7) ]); (Log.Error, "kept err", []) ] -> ()
   | _ -> Alcotest.fail "unexpected records");
  check Alcotest.bool "enabled Error at Warn" true (Log.enabled Log.Error);
  check Alcotest.bool "Info disabled at default" true (Log.enabled Log.Info)

let test_log_level_of_string () =
  check Alcotest.bool "warning alias" true (Log.level_of_string "WARNING" = Ok Log.Warn);
  check Alcotest.bool "debug" true (Log.level_of_string "debug" = Ok Log.Debug);
  match Log.level_of_string "loud" with
  | Ok _ -> Alcotest.fail "accepted bogus level"
  | Error _ -> ()

let test_log_jsonl_sink () =
  let path = Filename.temp_file "standby_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      let old_level = Log.get_level () in
      Log.set_sinks [ Log.jsonl_sink oc ];
      Log.set_level Log.Info;
      Fun.protect
        ~finally:(fun () ->
          Log.set_sinks [ Log.stderr_sink ];
          Log.set_level old_level;
          close_out_noerr oc)
        (fun () -> Log.info "hello %d" 42 ~fields:[ Log.str "k" "v" ]);
      let line = In_channel.with_open_text path In_channel.input_line in
      match Option.map Json.of_string line with
      | Some (Ok json) ->
        check Alcotest.(option string) "msg" (Some "hello 42")
          (Option.bind (Json.member "msg" json) Json.to_string_opt)
      | _ -> Alcotest.fail "sink did not write one JSON line")

(* ----------------------------- Metrics ----------------------------- *)

let test_histogram_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "t" ~buckets:[ 1.0; 2.0 ] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0 ];
  let s = Metrics.snapshot h in
  check Alcotest.(array (float 1e-9)) "bounds" [| 1.0; 2.0 |] s.Metrics.upper_bounds;
  (* le is inclusive: 1.0 lands in the first bucket, 2.0 in the second. *)
  check Alcotest.(array int) "cumulative" [| 2; 4; 5 |] s.Metrics.cumulative;
  check Alcotest.int "count" 5 s.Metrics.count;
  check (Alcotest.float 1e-9) "sum" 8.0 s.Metrics.sum

let test_histogram_rejects_bad_buckets () =
  let reg = Metrics.create () in
  (match Metrics.histogram reg "bad" ~buckets:[] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "accepted empty buckets");
  match Metrics.histogram reg "bad2" ~buckets:[ 2.0; 1.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted non-increasing buckets"

let test_registry_intern_and_kind_clash () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "x" in
  let b = Metrics.counter reg "x" in
  Metrics.incr a;
  Metrics.incr b;
  check Alcotest.int "same instrument" 2 (Metrics.counter_value a);
  match Metrics.gauge reg "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted"

let test_metrics_exports () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "demo.count" ~help:"d" in
  Metrics.incr c;
  let g = Metrics.gauge reg "demo.level" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram reg "demo.wall-s" ~buckets:[ 1.0 ] in
  Metrics.observe h 0.5;
  (match Json.of_string (Json.to_string (Metrics.to_json reg)) with
   | Ok _ -> ()
   | Error msg -> Alcotest.failf "to_json not parseable: %s" msg);
  let prom = Metrics.to_prometheus reg in
  let contains sub =
    let n = String.length sub and m = String.length prom in
    let rec scan i = i + n <= m && (String.sub prom i n = sub || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "sanitized names" true (contains "demo_count 1");
  check Alcotest.bool "histogram buckets" true (contains "demo_wall_s_bucket{le=\"+Inf\"} 1")

let test_percentile_known_distribution () =
  (* 40 observations: 10 in (0,1], 10 in (1,2], 20 in (2,4].  With
     linear interpolation the quantiles land exactly on bucket edges or
     midpoints. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" ~buckets:[ 1.0; 2.0; 4.0 ] in
  for _ = 1 to 10 do Metrics.observe h 0.5 done;
  for _ = 1 to 10 do Metrics.observe h 1.5 done;
  for _ = 1 to 20 do Metrics.observe h 3.0 done;
  let s = Metrics.snapshot h in
  check Alcotest.(array int) "cumulative" [| 10; 20; 40; 40 |] s.Metrics.cumulative;
  let p q = Metrics.percentile s q in
  let feq = Alcotest.(option (float 1e-9)) in
  check feq "p25 = first bucket's upper edge" (Some 1.0) (p 0.25);
  check feq "p50 = second bucket's upper edge" (Some 2.0) (p 0.5);
  check feq "p75 interpolates to the bucket midpoint" (Some 3.0) (p 0.75);
  check feq "p100 = largest bound" (Some 4.0) (p 1.0);
  check feq "q clamped above 1" (Some 4.0) (p 7.0);
  (* q = 0 reads the lower edge of the first populated bucket. *)
  check Alcotest.bool "p0 near zero" true
    (match p 0.0 with Some v -> Float.abs v < 1e-6 | None -> false);
  (* An observation beyond the last finite bound lands in +Inf and the
     tail quantile clamps to the largest finite bound. *)
  Metrics.observe h 100.0;
  let s = Metrics.snapshot h in
  check feq "+Inf clamps to largest finite bound" (Some 4.0)
    (Metrics.percentile s 1.0);
  (* Empty histogram: no estimate. *)
  let empty = Metrics.snapshot (Metrics.histogram reg "empty" ~buckets:[ 1.0 ]) in
  check feq "empty -> None" None (Metrics.percentile empty 0.5)

let test_merge_snapshots () =
  let mk obs_h obs_hd c g extra =
    let reg = Metrics.create () in
    let ctr = Metrics.counter reg "c" in
    Metrics.add ctr c;
    Metrics.set_gauge (Metrics.gauge reg "g") g;
    let h = Metrics.histogram reg "h" ~buckets:[ 1.0; 2.0 ] in
    List.iter (Metrics.observe h) obs_h;
    (* Same name, different bounds across the two registries. *)
    let hd_buckets = if extra then [ 5.0 ] else [ 1.0 ] in
    let hd = Metrics.histogram reg "hd" ~buckets:hd_buckets in
    List.iter (Metrics.observe hd) obs_hd;
    if extra then Metrics.add (Metrics.counter reg "only2") 7;
    Metrics.registry_snapshot reg
  in
  let a = mk [ 0.5 ] [ 0.5 ] 3 1.5 false in
  let b = mk [ 1.5 ] [ 3.0 ] 4 2.0 true in
  let m = Metrics.merge_snapshots [ a; b ] in
  check Alcotest.(option int) "counters sum" (Some 7) (Metrics.find_counter m "c");
  check Alcotest.(option int) "disjoint counter kept" (Some 7)
    (Metrics.find_counter m "only2");
  check Alcotest.(option (float 1e-9)) "gauges sum" (Some 3.5) (Metrics.find_gauge m "g");
  (match Metrics.find_histogram m "h" with
   | None -> Alcotest.fail "merged histogram missing"
   | Some h ->
     check Alcotest.(array (float 1e-9)) "bounds kept" [| 1.0; 2.0 |] h.Metrics.upper_bounds;
     check Alcotest.(array int) "buckets sum" [| 1; 2; 2 |] h.Metrics.cumulative;
     check Alcotest.int "count sums" 2 h.Metrics.count;
     check (Alcotest.float 1e-9) "sum sums" 2.0 h.Metrics.sum);
  (match Metrics.find_histogram m "hd" with
   | None -> Alcotest.fail "merged hd missing"
   | Some h ->
     (* Bounds disagree: the first snapshot's distribution wins whole. *)
     check Alcotest.(array (float 1e-9)) "first bounds kept" [| 1.0 |]
       h.Metrics.upper_bounds;
     check Alcotest.int "first count kept" 1 h.Metrics.count);
  let names = List.map fst m.Metrics.counters in
  check Alcotest.(list string) "sorted by name" (List.sort compare names) names

(* Validate a full Prometheus exposition: every line is a HELP, TYPE or
   sample line, metric names are legal, escapes survived, and histogram
   buckets are cumulative with +Inf == _count. *)
let check_prometheus_exposition text =
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let legal_name name =
    String.length name > 0
    && (let c = name.[0] in not (c >= '0' && c <= '9'))
    && String.for_all is_name_char name
  in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 2 && String.sub line 0 2 = "# " then begin
        match String.split_on_char ' ' line with
        | "#" :: ("HELP" | "TYPE") :: name :: _ ->
          if not (legal_name name) then
            Alcotest.failf "illegal metric name in comment: %s" line
        | _ -> Alcotest.failf "malformed comment line: %s" line
      end
      else begin
        (* name[{labels}] SP value *)
        match String.index_opt line ' ' with
        | None -> Alcotest.failf "sample line without value: %s" line
        | Some sp ->
          let lhs = String.sub line 0 sp in
          let name =
            match String.index_opt lhs '{' with
            | Some b ->
              if lhs.[String.length lhs - 1] <> '}' then
                Alcotest.failf "unterminated label set: %s" line;
              String.sub lhs 0 b
            | None -> lhs
          in
          if not (legal_name name) then Alcotest.failf "illegal metric name: %s" line;
          let value = String.sub line (sp + 1) (String.length line - sp - 1) in
          if value <> "+Inf" && Float.of_string_opt value = None then
            Alcotest.failf "unparseable sample value: %s" line
      end)
    lines

let test_prometheus_conformance () =
  let reg = Metrics.create () in
  (* Hostile names and help strings: dots, dashes, backslash, quote,
     newline must all be sanitized/escaped. *)
  Metrics.incr (Metrics.counter reg "a.b-c.total" ~help:"line1\nline2 \\ \"quoted\"");
  Metrics.set_gauge (Metrics.gauge reg "q-depth" ~help:"back\\slash") 3.0;
  let h = Metrics.histogram reg "wall.s" ~buckets:[ 0.1; 1.0 ] ~help:"hist \"h\"" in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 5.0 ];
  let text = Metrics.to_prometheus reg in
  check_prometheus_exposition text;
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "newline escaped in HELP" true (contains "line1\\nline2" text);
  check Alcotest.bool "backslash escaped in HELP" true (contains "\\\\" text);
  check Alcotest.bool "+Inf == count" true (contains "wall_s_bucket{le=\"+Inf\"} 3" text);
  check Alcotest.bool "escape helper: label value" true
    (Metrics.prom_label_value "a\"b\\c\nd" = "a\\\"b\\\\c\\nd");
  check Alcotest.bool "escape helper: help" true
    (Metrics.prom_help "a\\b\nc" = "a\\\\b\\nc");
  (* And the process-global registry: every instrument the subsystems
     registered at init must also export cleanly. *)
  check_prometheus_exposition (Metrics.to_prometheus Metrics.default)

(* ------------------------------ Spans ------------------------------ *)

let test_span_nesting_and_self_time () =
  with_temp_file (fun path ->
      Telemetry.with_trace_file path (fun () ->
          Telemetry.span "outer" (fun () ->
              Telemetry.span "inner" (fun () -> Telemetry.event "tick");
              Telemetry.span "inner" (fun () -> ()));
          check Alcotest.bool "tracing on" true (Telemetry.tracing ()));
      match Trace.read_file path with
      | Error msg -> Alcotest.failf "trace unreadable: %s" msg
      | Ok records ->
        let spans = List.filter (fun (r : Trace.record) -> r.Trace.kind = "span") records in
        check Alcotest.int "three spans" 3 (List.length spans);
        let outer = List.find (fun (r : Trace.record) -> r.Trace.name = "outer") spans in
        let inners = List.filter (fun (r : Trace.record) -> r.Trace.name = "inner") spans in
        List.iter
          (fun (r : Trace.record) ->
            check Alcotest.(option int) "inner nests under outer" outer.Trace.id
              r.Trace.parent)
          inners;
        let tick = List.find (fun (r : Trace.record) -> r.Trace.kind = "event") records in
        check Alcotest.bool "event tied to first inner" true
          (tick.Trace.parent = (List.hd inners).Trace.id);
        let rows = Trace.span_summary records in
        let outer_row = List.find (fun r -> r.Trace.span_name = "outer") rows in
        let inner_row = List.find (fun r -> r.Trace.span_name = "inner") rows in
        check Alcotest.int "inner count" 2 inner_row.Trace.count;
        (* Self time excludes the children: outer's self is its total
           minus both inner spans, and never negative. *)
        check Alcotest.bool "outer self < outer total" true
          (outer_row.Trace.self_s
           <= outer_row.Trace.total_s -. inner_row.Trace.total_s +. 1e-9);
        check Alcotest.bool "self non-negative" true (outer_row.Trace.self_s >= 0.0))

let test_span_exception_records () =
  with_temp_file (fun path ->
      (try
         Telemetry.with_trace_file path (fun () ->
             Telemetry.span "boom" (fun () -> failwith "expected"))
       with Failure _ -> ());
      match Trace.read_file path with
      | Error msg -> Alcotest.failf "trace unreadable: %s" msg
      | Ok records ->
        let span = List.find (fun (r : Trace.record) -> r.Trace.kind = "span") records in
        check Alcotest.string "span closed" "boom" span.Trace.name;
        check Alcotest.bool "raised marker" true
          (List.mem_assoc "raised" span.Trace.fields))

let test_span_noop_without_trace () =
  (* No trace file: spans still run their body and return its value. *)
  check Alcotest.int "value through span" 7 (Telemetry.span "idle" (fun () -> 7));
  check Alcotest.bool "not tracing" false (Telemetry.tracing ())

(* Concurrent well-formedness: many domains write spans and events
   through one tracer; every line must still parse and every span close. *)
let test_concurrent_trace_well_formed () =
  with_temp_file (fun path ->
      let tasks = 40 in
      Telemetry.with_trace_file path (fun () ->
          let pool = Pool.create ~workers:4 () in
          Fun.protect
            ~finally:(fun () -> Pool.shutdown pool)
            (fun () ->
              for i = 1 to tasks do
                Pool.submit pool (fun () ->
                    Telemetry.span "task"
                      ~fields:[ ("i", Json.Int i) ]
                      (fun () ->
                        Telemetry.span "step" (fun () ->
                            Telemetry.event "mark" ~fields:[ ("i", Json.Int i) ])))
              done;
              Pool.wait pool));
      match Trace.read_file path with
      | Error msg -> Alcotest.failf "corrupt trace: %s" msg
      | Ok records ->
        let count kind =
          List.length (List.filter (fun (r : Trace.record) -> r.Trace.kind = kind) records)
        in
        check Alcotest.int "all spans closed" (2 * tasks) (count "span");
        check Alcotest.int "all events present" tasks (count "event");
        (* Parent links resolve within the same domain's stack. *)
        let ids =
          List.filter_map
            (fun (r : Trace.record) -> if r.Trace.kind = "span" then r.Trace.id else None)
            records
        in
        List.iter
          (fun (r : Trace.record) ->
            match (r.Trace.kind, r.Trace.name, r.Trace.parent) with
            | "span", "step", Some p | "event", "mark", Some p ->
              check Alcotest.bool "parent is a recorded span" true (List.mem p ids)
            | _ -> ())
          records)

(* Cross-process merge: span ids restart at 1 in every process, so a
   merged trace aliases bare ids.  Identity must be (pid, id). *)
let synthetic_records lines =
  List.map
    (fun line ->
      match Trace.parse_line line with
      | Ok r -> r
      | Error msg -> Alcotest.failf "synthetic record rejected (%s): %s" msg line)
    lines

let test_assemble_cross_process_no_aliasing () =
  (* pid 100 (client) and pid 200 (server) both use span ids 1 and 2.
     The server's root links to the client's span 1 via parent_pid; the
     server's span 2 has a bare parent 1 that must resolve to the
     server's own span 1, never the client's. *)
  let records =
    synthetic_records
      [
        {|{"type":"span","name":"client.submit","id":1,"pid":100,"role":"client","trace_id":"t1","ts":0.0,"dur_s":1.0}|};
        {|{"type":"span","name":"client.other","id":2,"parent":1,"pid":100,"role":"client","trace_id":"t1","ts":0.3,"dur_s":0.2}|};
        {|{"type":"span","name":"server.request","id":1,"parent":1,"parent_pid":100,"pid":200,"role":"server","trace_id":"t1","ts":0.05,"dur_s":0.8}|};
        {|{"type":"span","name":"optimizer.run","id":2,"parent":1,"pid":200,"role":"server","trace_id":"t1","ts":0.1,"dur_s":0.5}|};
      ]
  in
  check Alcotest.bool "keys differ across pids" true
    (Trace.record_key (List.nth records 0) <> Trace.record_key (List.nth records 2));
  check Alcotest.(option (pair int int)) "bare parent stays in-process"
    (Some (200, 1))
    (Trace.parent_key (List.nth records 3));
  (match Trace.assemble records with
   | [ { Trace.tree_trace_id = Some "t1"; roots = [ root ] } ] ->
     check Alcotest.string "root" "client.submit" (root.Trace.span).Trace.name;
     let names node = List.map (fun n -> (n.Trace.span).Trace.name) node.Trace.children in
     (* Children in ts order; the server hop is NOT flattened into the
        client even though both processes have a span id 1. *)
     check Alcotest.(list string) "root children"
       [ "server.request"; "client.other" ]
       (names root);
     let request =
       List.find (fun n -> (n.Trace.span).Trace.name = "server.request") root.Trace.children
     in
     check Alcotest.(list string) "server child" [ "optimizer.run" ] (names request);
     check (Alcotest.float 1e-9) "server self time" 0.3 (Trace.node_self_s request);
     (* Root self: 1.0 - 0.8 (server hop) - 0.2 (client.other). *)
     check (Alcotest.float 1e-9) "root self time" 0.0 (Trace.node_self_s root)
   | forest -> Alcotest.failf "expected one t1 tree, got %d" (List.length forest));
  (* span_summary keys child time by (pid, id) too: the server's
     optimizer.run must not be charged against the client's span 1. *)
  let row name =
    List.find (fun r -> r.Trace.span_name = name) (Trace.span_summary records)
  in
  check (Alcotest.float 1e-9) "summary client self" 0.0 (row "client.submit").Trace.self_s;
  check (Alcotest.float 1e-9) "summary server self" 0.3 (row "server.request").Trace.self_s

let test_with_context_tagging () =
  with_temp_file (fun path ->
      let inner_ctx = ref None in
      let remote = { Telemetry.pid = 4242; span = 7 } in
      Telemetry.with_trace_file path (fun () ->
          check Alcotest.bool "no ambient context" true
            (Telemetry.current_context () = None);
          Telemetry.with_context
            { Telemetry.trace_id = "abc"; parent = None }
            (fun () ->
              Telemetry.span "local.root" (fun () ->
                  inner_ctx := Telemetry.current_context ()));
          (* A remote parent with no local span open: the span links
             straight to the remote ref. *)
          Telemetry.with_context
            { Telemetry.trace_id = "xyz"; parent = Some remote }
            (fun () -> Telemetry.span "remote.child" (fun () -> ())));
      match Trace.read_file path with
      | Error msg -> Alcotest.failf "trace unreadable: %s" msg
      | Ok records ->
        let span name =
          List.find
            (fun (r : Trace.record) -> r.Trace.kind = "span" && r.Trace.name = name)
            records
        in
        let root = span "local.root" in
        check Alcotest.(option string) "trace id propagated to record" (Some "abc")
          root.Trace.trace_id;
        check Alcotest.(option int) "root has no parent" None root.Trace.parent;
        (* What an outgoing request should carry from inside the span:
           same trace id, parent = the open span in this process. *)
        (match !inner_ctx with
         | Some { Telemetry.trace_id = "abc"; parent = Some ref_ } ->
           check Alcotest.int "parent pid is ours" (Unix.getpid ()) ref_.Telemetry.pid;
           check Alcotest.(option int) "parent span is the open span"
             root.Trace.id (Some ref_.Telemetry.span)
         | _ -> Alcotest.fail "current_context inside span is wrong");
        let child = span "remote.child" in
        check Alcotest.(option string) "remote trace id" (Some "xyz") child.Trace.trace_id;
        check Alcotest.(option int) "remote parent span" (Some 7) child.Trace.parent;
        check Alcotest.(option int) "remote parent pid" (Some 4242) child.Trace.parent_pid;
        check Alcotest.(option (pair int int)) "parent key follows the remote ref"
          (Some (4242, 7))
          (Trace.parent_key child))

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "standby_telemetry"
    [
      ( "json",
        [
          quick "roundtrip" test_json_roundtrip;
          quick "nan -> null" test_json_nan_is_null;
          quick "rejects garbage" test_json_rejects_garbage;
        ] );
      ( "log",
        [
          quick "level filtering" test_log_level_filtering;
          quick "level parsing" test_log_level_of_string;
          quick "jsonl sink" test_log_jsonl_sink;
        ] );
      ( "metrics",
        [
          quick "histogram buckets" test_histogram_buckets;
          quick "bad buckets" test_histogram_rejects_bad_buckets;
          quick "intern and kind clash" test_registry_intern_and_kind_clash;
          quick "exports" test_metrics_exports;
          quick "percentile" test_percentile_known_distribution;
          quick "merge snapshots" test_merge_snapshots;
          quick "prometheus conformance" test_prometheus_conformance;
        ] );
      ( "trace",
        [
          quick "nesting and self time" test_span_nesting_and_self_time;
          quick "exception closes span" test_span_exception_records;
          quick "noop without trace" test_span_noop_without_trace;
          quick "concurrent well-formed" test_concurrent_trace_well_formed;
          quick "cross-process assemble" test_assemble_cross_process_no_aliasing;
          quick "context tagging" test_with_context_tagging;
        ] );
    ]

(* Tests for standby_telemetry: the JSON codec, log-level filtering,
   histogram bucket boundaries, span nesting / self-time, and trace-file
   well-formedness under concurrent writes from a domain pool. *)

module Json = Standby_telemetry.Json
module Log = Standby_telemetry.Log
module Metrics = Standby_telemetry.Metrics
module Telemetry = Standby_telemetry.Telemetry
module Trace = Standby_telemetry.Trace
module Pool = Standby_pool.Pool

let check = Alcotest.check

let with_temp_file f =
  let path = Filename.temp_file "standby_telemetry" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* ------------------------------- JSON ------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.Float 1.5);
        ("c", Json.String "x\"y\nz");
        ("d", Json.List [ Json.Bool true; Json.Null ]);
        ("nested", Json.Obj [ ("k", Json.String "v") ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok parsed ->
    check Alcotest.bool "round trips" true (parsed = doc);
    check Alcotest.(option int) "member a"
      (Some 3)
      (Option.bind (Json.member "a" parsed) Json.to_int_opt)

let test_json_nan_is_null () =
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_rejects_garbage () =
  (match Json.of_string "{\"a\":}" with
   | Ok _ -> Alcotest.fail "accepted {\"a\":}"
   | Error _ -> ());
  match Json.of_string "{} trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing bytes"
  | Error _ -> ()

(* ------------------------------- Log ------------------------------- *)

(* Capture records in memory; restore the default stderr configuration
   afterwards so other tests keep their readable output. *)
let with_captured_log level f =
  let records = ref [] in
  let sink lvl ~ts:_ ~msg ~fields = records := (lvl, msg, fields) :: !records in
  let old_level = Log.get_level () in
  Log.set_sinks [ sink ];
  Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Log.set_sinks [ Log.stderr_sink ];
      Log.set_level old_level)
    (fun () ->
      f ();
      List.rev !records)

let test_log_level_filtering () =
  let records =
    with_captured_log Log.Warn (fun () ->
        Log.debug "dropped %d" 1;
        Log.info "dropped too";
        Log.warn "kept %s" "warn" ~fields:[ Log.int "n" 7 ];
        Log.err "kept err")
  in
  check Alcotest.int "only warn and err pass" 2 (List.length records);
  (match records with
   | [ (Log.Warn, "kept warn", [ ("n", Json.Int 7) ]); (Log.Error, "kept err", []) ] -> ()
   | _ -> Alcotest.fail "unexpected records");
  check Alcotest.bool "enabled Error at Warn" true (Log.enabled Log.Error);
  check Alcotest.bool "Info disabled at default" true (Log.enabled Log.Info)

let test_log_level_of_string () =
  check Alcotest.bool "warning alias" true (Log.level_of_string "WARNING" = Ok Log.Warn);
  check Alcotest.bool "debug" true (Log.level_of_string "debug" = Ok Log.Debug);
  match Log.level_of_string "loud" with
  | Ok _ -> Alcotest.fail "accepted bogus level"
  | Error _ -> ()

let test_log_jsonl_sink () =
  let path = Filename.temp_file "standby_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      let old_level = Log.get_level () in
      Log.set_sinks [ Log.jsonl_sink oc ];
      Log.set_level Log.Info;
      Fun.protect
        ~finally:(fun () ->
          Log.set_sinks [ Log.stderr_sink ];
          Log.set_level old_level;
          close_out_noerr oc)
        (fun () -> Log.info "hello %d" 42 ~fields:[ Log.str "k" "v" ]);
      let line = In_channel.with_open_text path In_channel.input_line in
      match Option.map Json.of_string line with
      | Some (Ok json) ->
        check Alcotest.(option string) "msg" (Some "hello 42")
          (Option.bind (Json.member "msg" json) Json.to_string_opt)
      | _ -> Alcotest.fail "sink did not write one JSON line")

(* ----------------------------- Metrics ----------------------------- *)

let test_histogram_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "t" ~buckets:[ 1.0; 2.0 ] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0 ];
  let s = Metrics.snapshot h in
  check Alcotest.(array (float 1e-9)) "bounds" [| 1.0; 2.0 |] s.Metrics.upper_bounds;
  (* le is inclusive: 1.0 lands in the first bucket, 2.0 in the second. *)
  check Alcotest.(array int) "cumulative" [| 2; 4; 5 |] s.Metrics.cumulative;
  check Alcotest.int "count" 5 s.Metrics.count;
  check (Alcotest.float 1e-9) "sum" 8.0 s.Metrics.sum

let test_histogram_rejects_bad_buckets () =
  let reg = Metrics.create () in
  (match Metrics.histogram reg "bad" ~buckets:[] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "accepted empty buckets");
  match Metrics.histogram reg "bad2" ~buckets:[ 2.0; 1.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted non-increasing buckets"

let test_registry_intern_and_kind_clash () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "x" in
  let b = Metrics.counter reg "x" in
  Metrics.incr a;
  Metrics.incr b;
  check Alcotest.int "same instrument" 2 (Metrics.counter_value a);
  match Metrics.gauge reg "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted"

let test_metrics_exports () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "demo.count" ~help:"d" in
  Metrics.incr c;
  let g = Metrics.gauge reg "demo.level" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram reg "demo.wall-s" ~buckets:[ 1.0 ] in
  Metrics.observe h 0.5;
  (match Json.of_string (Json.to_string (Metrics.to_json reg)) with
   | Ok _ -> ()
   | Error msg -> Alcotest.failf "to_json not parseable: %s" msg);
  let prom = Metrics.to_prometheus reg in
  let contains sub =
    let n = String.length sub and m = String.length prom in
    let rec scan i = i + n <= m && (String.sub prom i n = sub || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "sanitized names" true (contains "demo_count 1");
  check Alcotest.bool "histogram buckets" true (contains "demo_wall_s_bucket{le=\"+Inf\"} 1")

(* ------------------------------ Spans ------------------------------ *)

let test_span_nesting_and_self_time () =
  with_temp_file (fun path ->
      Telemetry.with_trace_file path (fun () ->
          Telemetry.span "outer" (fun () ->
              Telemetry.span "inner" (fun () -> Telemetry.event "tick");
              Telemetry.span "inner" (fun () -> ()));
          check Alcotest.bool "tracing on" true (Telemetry.tracing ()));
      match Trace.read_file path with
      | Error msg -> Alcotest.failf "trace unreadable: %s" msg
      | Ok records ->
        let spans = List.filter (fun (r : Trace.record) -> r.Trace.kind = "span") records in
        check Alcotest.int "three spans" 3 (List.length spans);
        let outer = List.find (fun (r : Trace.record) -> r.Trace.name = "outer") spans in
        let inners = List.filter (fun (r : Trace.record) -> r.Trace.name = "inner") spans in
        List.iter
          (fun (r : Trace.record) ->
            check Alcotest.(option int) "inner nests under outer" outer.Trace.id
              r.Trace.parent)
          inners;
        let tick = List.find (fun (r : Trace.record) -> r.Trace.kind = "event") records in
        check Alcotest.bool "event tied to first inner" true
          (tick.Trace.parent = (List.hd inners).Trace.id);
        let rows = Trace.span_summary records in
        let outer_row = List.find (fun r -> r.Trace.span_name = "outer") rows in
        let inner_row = List.find (fun r -> r.Trace.span_name = "inner") rows in
        check Alcotest.int "inner count" 2 inner_row.Trace.count;
        (* Self time excludes the children: outer's self is its total
           minus both inner spans, and never negative. *)
        check Alcotest.bool "outer self < outer total" true
          (outer_row.Trace.self_s
           <= outer_row.Trace.total_s -. inner_row.Trace.total_s +. 1e-9);
        check Alcotest.bool "self non-negative" true (outer_row.Trace.self_s >= 0.0))

let test_span_exception_records () =
  with_temp_file (fun path ->
      (try
         Telemetry.with_trace_file path (fun () ->
             Telemetry.span "boom" (fun () -> failwith "expected"))
       with Failure _ -> ());
      match Trace.read_file path with
      | Error msg -> Alcotest.failf "trace unreadable: %s" msg
      | Ok records ->
        let span = List.find (fun (r : Trace.record) -> r.Trace.kind = "span") records in
        check Alcotest.string "span closed" "boom" span.Trace.name;
        check Alcotest.bool "raised marker" true
          (List.mem_assoc "raised" span.Trace.fields))

let test_span_noop_without_trace () =
  (* No trace file: spans still run their body and return its value. *)
  check Alcotest.int "value through span" 7 (Telemetry.span "idle" (fun () -> 7));
  check Alcotest.bool "not tracing" false (Telemetry.tracing ())

(* Concurrent well-formedness: many domains write spans and events
   through one tracer; every line must still parse and every span close. *)
let test_concurrent_trace_well_formed () =
  with_temp_file (fun path ->
      let tasks = 40 in
      Telemetry.with_trace_file path (fun () ->
          let pool = Pool.create ~workers:4 () in
          Fun.protect
            ~finally:(fun () -> Pool.shutdown pool)
            (fun () ->
              for i = 1 to tasks do
                Pool.submit pool (fun () ->
                    Telemetry.span "task"
                      ~fields:[ ("i", Json.Int i) ]
                      (fun () ->
                        Telemetry.span "step" (fun () ->
                            Telemetry.event "mark" ~fields:[ ("i", Json.Int i) ])))
              done;
              Pool.wait pool));
      match Trace.read_file path with
      | Error msg -> Alcotest.failf "corrupt trace: %s" msg
      | Ok records ->
        let count kind =
          List.length (List.filter (fun (r : Trace.record) -> r.Trace.kind = kind) records)
        in
        check Alcotest.int "all spans closed" (2 * tasks) (count "span");
        check Alcotest.int "all events present" tasks (count "event");
        (* Parent links resolve within the same domain's stack. *)
        let ids =
          List.filter_map
            (fun (r : Trace.record) -> if r.Trace.kind = "span" then r.Trace.id else None)
            records
        in
        List.iter
          (fun (r : Trace.record) ->
            match (r.Trace.kind, r.Trace.name, r.Trace.parent) with
            | "span", "step", Some p | "event", "mark", Some p ->
              check Alcotest.bool "parent is a recorded span" true (List.mem p ids)
            | _ -> ())
          records)

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "standby_telemetry"
    [
      ( "json",
        [
          quick "roundtrip" test_json_roundtrip;
          quick "nan -> null" test_json_nan_is_null;
          quick "rejects garbage" test_json_rejects_garbage;
        ] );
      ( "log",
        [
          quick "level filtering" test_log_level_filtering;
          quick "level parsing" test_log_level_of_string;
          quick "jsonl sink" test_log_jsonl_sink;
        ] );
      ( "metrics",
        [
          quick "histogram buckets" test_histogram_buckets;
          quick "bad buckets" test_histogram_rejects_bad_buckets;
          quick "intern and kind clash" test_registry_intern_and_kind_clash;
          quick "exports" test_metrics_exports;
        ] );
      ( "trace",
        [
          quick "nesting and self time" test_span_nesting_and_self_time;
          quick "exception closes span" test_span_exception_records;
          quick "noop without trace" test_span_noop_without_trace;
          quick "concurrent well-formed" test_concurrent_trace_well_formed;
        ] );
    ]

(* Tests for standby_timing: the delay model and the rise/fall STA with
   version derating, budgets and feasibility checks. *)

module Process = Standby_device.Process
module Gate_kind = Standby_netlist.Gate_kind
module Netlist = Standby_netlist.Netlist
module Version = Standby_cells.Version
module Library = Standby_cells.Library
module Delay_model = Standby_timing.Delay_model
module Sta = Standby_timing.Sta
module Prng = Standby_util.Prng

let check = Alcotest.check

let lib = Library.build Process.default

let random_circuit seed = Standby_circuits.Random_logic.generate ~seed ~inputs:8 ~gates:40 ()

(* Pick a random library option for every gate. *)
let randomize_workspace rng sta net =
  Netlist.iter_gates net (fun id kind _ ->
      let state = Prng.int rng ~bound:(Gate_kind.state_count kind) in
      let opts = Library.options lib kind ~state in
      let o = opts.(Prng.int rng ~bound:(Array.length opts)) in
      Sta.assign sta id ~version:o.Version.version ~perm:o.Version.perm);
  Sta.update sta

(* --------------------------- Delay model -------------------------- *)

let test_base_delay_positive () =
  List.iter
    (fun kind ->
      check Alcotest.bool (Gate_kind.name kind) true
        (Delay_model.base_delay kind ~fanout:1 > 0.0))
    Gate_kind.all

let test_base_delay_load_monotone () =
  List.iter
    (fun kind ->
      check Alcotest.bool (Gate_kind.name kind) true
        (Delay_model.base_delay kind ~fanout:4 > Delay_model.base_delay kind ~fanout:1))
    Gate_kind.all

let test_node_load_minimum_one () =
  let net = random_circuit 1 in
  Array.iter
    (fun o -> check Alcotest.bool "PO load" true (Delay_model.node_load net o >= 1))
    (Netlist.outputs net)

(* ------------------------------- STA ------------------------------ *)

let test_create_meets_own_budget () =
  let net = random_circuit 2 in
  let sta = Sta.create lib net in
  check Alcotest.bool "all-fast meets its own delay" true (Sta.meets_budget sta);
  check (Alcotest.float 1e-9) "budget = delay" (Sta.circuit_delay sta) (Sta.budget sta)

let test_all_slow_roughly_doubles () =
  (* The paper: replacing every device with its slowest version nearly
     doubles the delay. *)
  let net = random_circuit 3 in
  let fast = Sta.all_fast_delay lib net in
  let slow = Sta.all_slow_delay lib net in
  let ratio = slow /. fast in
  if ratio < 1.5 || ratio > 2.2 then Alcotest.failf "slow/fast ratio %.2f" ratio

let test_budget_interpolation () =
  let net = random_circuit 4 in
  let fast = Sta.all_fast_delay lib net in
  let slow = Sta.all_slow_delay lib net in
  let b = Sta.budget_for_penalty lib net ~penalty:0.25 in
  check (Alcotest.float 1e-9) "interpolation" (fast +. (0.25 *. (slow -. fast))) b

let test_slowing_gates_monotone =
  QCheck.Test.make ~count:40 ~name:"assigning slower versions never reduces delay"
    QCheck.(make Gen.(pair (int_range 0 500) (int_range 0 10_000)))
    (fun (seed, pick) ->
      let net = random_circuit seed in
      let sta = Sta.create lib net in
      let d0 = Sta.circuit_delay sta in
      (* Slow one arbitrary gate to its minimum-leakage option at the
         all-ones state. *)
      let gates = ref [] in
      Netlist.iter_gates net (fun id kind _ -> gates := (id, kind) :: !gates);
      let arr = Array.of_list !gates in
      let id, kind = arr.(pick mod Array.length arr) in
      let state = Gate_kind.state_count kind - 1 in
      let o = (Library.options lib kind ~state).(0) in
      Sta.assign sta id ~version:o.Version.version ~perm:o.Version.perm;
      Sta.update sta;
      Sta.circuit_delay sta >= d0 -. 1e-9)

let test_update_from_equals_full_update =
  QCheck.Test.make ~count:30 ~name:"incremental update matches full recomputation"
    QCheck.(make Gen.(pair (int_range 0 500) (int_range 0 10_000)))
    (fun (seed, pick) ->
      let net = random_circuit seed in
      let sta = Sta.create lib net in
      let gates = ref [] in
      Netlist.iter_gates net (fun id kind _ -> gates := (id, kind) :: !gates);
      let arr = Array.of_list !gates in
      let id, kind = arr.(pick mod Array.length arr) in
      let state = Gate_kind.state_count kind - 1 in
      let o = (Library.options lib kind ~state).(0) in
      Sta.assign sta id ~version:o.Version.version ~perm:o.Version.perm;
      Sta.update_from sta id;
      let incremental = Sta.circuit_delay sta in
      Sta.update sta;
      abs_float (incremental -. Sta.circuit_delay sta) < 1e-9)

let test_update_from_sequence_matches_fresh =
  (* A chain of random assignments, each followed by the worklist-based
     incremental update, must leave every arrival, slew and required
     time equal to a fresh STA given the same final assignment and one
     full update. *)
  QCheck.Test.make ~count:25 ~name:"incremental update sequence matches fresh STA"
    QCheck.(make Gen.(pair (int_range 0 500) (int_range 0 1_000_000)))
    (fun (seed, walk) ->
      let net = random_circuit seed in
      let rng = Prng.create ~seed:walk in
      let sta = Sta.create lib net in
      Sta.set_budget sta (Sta.budget_for_penalty lib net ~penalty:0.1);
      let gates = ref [] in
      Netlist.iter_gates net (fun id kind _ -> gates := (id, kind) :: !gates);
      let arr = Array.of_list !gates in
      for _ = 1 to 30 do
        let id, kind = arr.(Prng.int rng ~bound:(Array.length arr)) in
        let state = Prng.int rng ~bound:(Gate_kind.state_count kind) in
        let opts = Library.options lib kind ~state in
        let o = opts.(Prng.int rng ~bound:(Array.length opts)) in
        Sta.assign sta id ~version:o.Version.version ~perm:o.Version.perm;
        Sta.update_from sta id
      done;
      let fresh = Sta.create lib net in
      Sta.set_budget fresh (Sta.budget sta);
      Netlist.iter_gates net (fun id _ _ ->
          Sta.assign fresh id ~version:(Sta.version_of sta id)
            ~perm:(Array.copy (Sta.perm_of sta id)));
      Sta.update fresh;
      let close a b =
        (a = b (* covers infinite required times *))
        || abs_float (a -. b) < 1e-6
      in
      let ok = ref true in
      for id = 0 to Netlist.node_count net - 1 do
        let ar, af = Sta.arrival sta id and ar', af' = Sta.arrival fresh id in
        let sr, sf = Sta.slew_of sta id and sr', sf' = Sta.slew_of fresh id in
        let rr, rf = Sta.required sta id and rr', rf' = Sta.required fresh id in
        if
          not
            (close ar ar' && close af af' && close sr sr' && close sf sf'
             && close rr rr' && close rf rf')
        then ok := false
      done;
      !ok)

let test_candidate_feasible_necessary =
  (* Slowing a gate on an all-fast workspace only degrades timing, so a
     failed local check guarantees the installed candidate breaks the
     budget (the check is a sound rejection filter); a passing check may
     still break it downstream via slew propagation, which the gate tree
     covers with a post-install meets_budget confirmation. *)
  QCheck.Test.make ~count:40 ~name:"candidate_feasible rejections are real violations"
    QCheck.(make Gen.(triple (int_range 0 300) (int_range 0 10_000) (int_range 0 3)))
    (fun (seed, pick, state_pick) ->
      let net = random_circuit seed in
      let sta = Sta.create lib net in
      Sta.set_budget sta (Sta.budget_for_penalty lib net ~penalty:0.05);
      let gates = ref [] in
      Netlist.iter_gates net (fun id kind _ -> gates := (id, kind) :: !gates);
      let arr = Array.of_list !gates in
      let id, kind = arr.(pick mod Array.length arr) in
      let state = state_pick mod Gate_kind.state_count kind in
      let opts = Library.options lib kind ~state in
      let o = opts.(0) in
      let locally_ok =
        Sta.candidate_feasible sta id ~version:o.Version.version ~perm:o.Version.perm
      in
      Sta.assign sta id ~version:o.Version.version ~perm:o.Version.perm;
      Sta.update sta;
      let globally_ok = Sta.meets_budget sta in
      (* not locally_ok implies not globally_ok *)
      locally_ok || not globally_ok)

let test_reset_fast_restores () =
  let rng = Prng.create ~seed:77 in
  let net = random_circuit 7 in
  let sta = Sta.create lib net in
  let d0 = Sta.circuit_delay sta in
  randomize_workspace rng sta net;
  Sta.reset_fast sta;
  check (Alcotest.float 1e-9) "delay restored" d0 (Sta.circuit_delay sta)

let test_slacks_nonnegative_within_budget () =
  let net = random_circuit 9 in
  let sta = Sta.create lib net in
  Sta.set_budget sta (Sta.budget_for_penalty lib net ~penalty:0.10);
  Netlist.iter_gates net (fun id _ _ ->
      if Sta.gate_slack sta id < -1e-9 then Alcotest.failf "negative slack at %d" id)

let test_version_accessors () =
  let net = random_circuit 11 in
  let sta = Sta.create lib net in
  let id = Netlist.node_count net - 1 in
  if not (Netlist.is_input net id) then begin
    let kind = match Netlist.kind_of net id with Some k -> k | None -> assert false in
    let o = (Library.options lib kind ~state:0).(0) in
    Sta.assign sta id ~version:o.Version.version ~perm:o.Version.perm;
    check Alcotest.int "version_of" o.Version.version (Sta.version_of sta id)
  end

let test_feasible_rejects_infeasible () =
  (* With a zero-slack budget, a strictly slower candidate on a critical
     gate must be rejected. *)
  let net = random_circuit 13 in
  let sta = Sta.create lib net in
  (* budget = all-fast delay: zero slack on the critical path *)
  let found_rejection = ref false in
  Netlist.iter_gates net (fun id kind _ ->
      let state = Gate_kind.state_count kind - 1 in
      let opts = Library.options lib kind ~state in
      let o = opts.(0) in
      if
        o.Version.version <> 0
        && not (Sta.candidate_feasible sta id ~version:o.Version.version ~perm:o.Version.perm)
      then found_rejection := true);
  check Alcotest.bool "some candidate rejected at zero slack" true !found_rejection

(* --------------------------- Timing report ------------------------ *)

module Timing_report = Standby_timing.Timing_report

let test_critical_path_structure =
  QCheck.Test.make ~count:20 ~name:"critical path: input to worst output, nondecreasing"
    QCheck.(make Gen.(int_range 0 500))
    (fun seed ->
      let net = random_circuit seed in
      let sta = Sta.create lib net in
      let path = Timing_report.critical_path sta in
      match path with
      | [] -> false
      | first :: _ ->
        let last = List.nth path (List.length path - 1) in
        let starts_at_input = Netlist.is_input net first.Timing_report.node in
        let ends_at_worst =
          abs_float (last.Timing_report.arrival -. Sta.circuit_delay sta) < 1e-9
          && Array.exists (( = ) last.Timing_report.node) (Netlist.outputs net)
        in
        let monotone = ref true in
        List.fold_left
          (fun prev (s : Timing_report.step) ->
            if s.Timing_report.arrival < prev -. 1e-9 then monotone := false;
            s.Timing_report.arrival)
          0.0 path
        |> ignore;
        starts_at_input && ends_at_worst && !monotone)

let test_critical_path_alternates () =
  let net = random_circuit 5 in
  let sta = Sta.create lib net in
  let path = Timing_report.critical_path sta in
  (* Inverting stages alternate transitions. *)
  List.fold_left
    (fun prev (s : Timing_report.step) ->
      (match prev with
       | Some p ->
         if p = s.Timing_report.transition then Alcotest.fail "transition did not alternate"
       | None -> ());
      Some s.Timing_report.transition)
    None path
  |> ignore

let test_render_report () =
  let net = random_circuit 6 in
  let sta = Sta.create lib net in
  let text = Timing_report.render sta in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and hl = String.length text in
        let rec scan i = i + nl <= hl && (String.sub text i nl = needle || scan (i + 1)) in
        scan 0
      in
      if not found then Alcotest.failf "missing %S in report" needle)
    [ "Critical path"; "slack"; "input" ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "standby_timing"
    [
      ( "delay-model",
        [
          quick "positive" test_base_delay_positive;
          quick "load monotone" test_base_delay_load_monotone;
          quick "po load" test_node_load_minimum_one;
        ] );
      ( "sta",
        [
          quick "create meets budget" test_create_meets_own_budget;
          quick "all-slow doubles" test_all_slow_roughly_doubles;
          quick "budget interpolation" test_budget_interpolation;
          QCheck_alcotest.to_alcotest test_slowing_gates_monotone;
          QCheck_alcotest.to_alcotest test_update_from_equals_full_update;
          QCheck_alcotest.to_alcotest test_update_from_sequence_matches_fresh;
          QCheck_alcotest.to_alcotest test_candidate_feasible_necessary;
          quick "reset fast" test_reset_fast_restores;
          quick "slacks nonnegative" test_slacks_nonnegative_within_budget;
          quick "version accessors" test_version_accessors;
          quick "rejects infeasible" test_feasible_rejects_infeasible;
        ] );
      ( "timing-report",
        [
          QCheck_alcotest.to_alcotest test_critical_path_structure;
          quick "alternating transitions" test_critical_path_alternates;
          quick "render" test_render_report;
        ] );
    ]

(* CI helper: compare a fresh BENCH_results.json against a committed
   baseline and fail on wall-time regressions.

     bench_compare BASELINE CURRENT [--tolerance FRAC] [--min-seconds S]

   For every artifact present in both files whose baseline wall time is
   at least --min-seconds (default 0.05 s — anything faster is timer
   noise), the run regresses if

     current_wall > baseline_wall * (1 + tolerance)

   with tolerance defaulting to 0.15.  Exit 0 when nothing regressed,
   1 on any regression, 2 on usage or parse errors.  Artifacts missing
   from either side are reported but never fail the check, so the
   baseline does not have to be regenerated when an artifact is added
   or retired. *)

module Json = Standby_telemetry.Json

let usage () =
  prerr_endline
    "usage: bench_compare BASELINE CURRENT [--tolerance FRAC] [--min-seconds S]";
  exit 2

let load path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "bench_compare: %s\n" msg;
      exit 2
  in
  match Json.of_string text with
  | Error msg ->
    Printf.eprintf "bench_compare: %s: invalid JSON: %s\n" path msg;
    exit 2
  | Ok doc -> doc

(* artifact name -> wall seconds, in file order *)
let artifacts doc =
  match Option.bind (Json.member "artifacts" doc) Json.to_list_opt with
  | None -> []
  | Some items ->
    List.filter_map
      (fun item ->
        match
          ( Option.bind (Json.member "artifact" item) Json.to_string_opt,
            Option.bind (Json.member "wall_s" item) Json.to_float_opt )
        with
        | Some name, Some wall -> Some (name, wall)
        | _ -> None)
      items

let () =
  let tolerance = ref 0.15 in
  let min_seconds = ref 0.05 in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f >= 0.0 -> tolerance := f
       | _ -> usage ());
      parse rest
    | "--min-seconds" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f >= 0.0 -> min_seconds := f
       | _ -> usage ());
      parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
      positional := arg :: !positional;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !positional with
    | [ b; c ] -> (b, c)
    | _ -> usage ()
  in
  let baseline = artifacts (load baseline_path) in
  let current = artifacts (load current_path) in
  if baseline = [] then begin
    Printf.eprintf "bench_compare: %s lists no artifacts\n" baseline_path;
    exit 2
  end;
  Printf.printf "%-12s %12s %12s %10s  %s\n" "artifact" "baseline(s)" "current(s)"
    "delta" "verdict";
  let regressions = ref 0 in
  List.iter
    (fun (name, base_wall) ->
      match List.assoc_opt name current with
      | None -> Printf.printf "%-12s %12.3f %12s %10s  missing from current\n" name base_wall "-" "-"
      | Some cur_wall ->
        let delta_pc = (cur_wall -. base_wall) /. base_wall *. 100.0 in
        let verdict =
          if base_wall < !min_seconds then "skip (below floor)"
          else if cur_wall > base_wall *. (1.0 +. !tolerance) then begin
            incr regressions;
            "REGRESSION"
          end
          else "ok"
        in
        Printf.printf "%-12s %12.3f %12.3f %+9.1f%%  %s\n" name base_wall cur_wall
          delta_pc verdict)
    baseline;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name baseline) then
        Printf.printf "%-12s %12s %12s %10s  new (no baseline)\n" name "-" "-" "-")
    current;
  if !regressions > 0 then begin
    Printf.eprintf "bench_compare: %d artifact(s) regressed more than %.0f%%\n"
      !regressions (!tolerance *. 100.0);
    exit 1
  end

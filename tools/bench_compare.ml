(* CI helper: compare a fresh BENCH_results.json against a committed
   baseline and fail on wall-time regressions.

     bench_compare BASELINE CURRENT [--tolerance FRAC] [--min-seconds S]
                   [--max-ratio R]

   For every artifact present in both files whose baseline wall time is
   at least --min-seconds (default 0.05 s — anything faster is timer
   noise), the run regresses if

     current_wall > baseline_wall * (1 + tolerance)

   with tolerance defaulting to 0.15.

   When CURRENT carries a "greedy-scaling" artifact, its per-size
   series is additionally checked for near-linearity: consecutive
   points double the gate count, so the geometric mean of the
   consecutive wall-time ratios must stay at or below --max-ratio
   (default 3.5 — a quadratic optimizer doubles to 4.0), no single
   ratio may exceed 1.3x that bound, and every point must report a
   delay-feasible result.  The geometric mean is the gate because a
   single ratio on a loaded CI host is noise; the mean across the
   series is not.

   Exit 0 when nothing regressed, 1 on any regression or scaling
   violation, 2 on usage or parse errors.  Artifacts missing from
   either side are reported but never fail the check, so the baseline
   does not have to be regenerated when an artifact is added or
   retired. *)

module Json = Standby_telemetry.Json

let usage () =
  prerr_endline
    "usage: bench_compare BASELINE CURRENT [--tolerance FRAC] [--min-seconds S] \
     [--max-ratio R]";
  exit 2

let load path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "bench_compare: %s\n" msg;
      exit 2
  in
  match Json.of_string text with
  | Error msg ->
    Printf.eprintf "bench_compare: %s: invalid JSON: %s\n" path msg;
    exit 2
  | Ok doc -> doc

(* artifact name -> wall seconds, in file order *)
let artifacts doc =
  match Option.bind (Json.member "artifacts" doc) Json.to_list_opt with
  | None -> []
  | Some items ->
    List.filter_map
      (fun item ->
        match
          ( Option.bind (Json.member "artifact" item) Json.to_string_opt,
            Option.bind (Json.member "wall_s" item) Json.to_float_opt )
        with
        | Some name, Some wall -> Some (name, wall)
        | _ -> None)
      items

(* The greedy-scaling series: (gates, wall_s, feasible) per point, in
   file order, from the artifact's "series" member. *)
let scaling_series doc =
  match Option.bind (Json.member "artifacts" doc) Json.to_list_opt with
  | None -> None
  | Some items ->
    List.find_map
      (fun item ->
        match Option.bind (Json.member "artifact" item) Json.to_string_opt with
        | Some "greedy-scaling" ->
          Option.bind (Json.member "series" item) Json.to_list_opt
          |> Option.map
               (List.filter_map (fun point ->
                    match
                      ( Option.bind (Json.member "gates" point) Json.to_int_opt,
                        Option.bind (Json.member "wall_s" point) Json.to_float_opt,
                        Json.member "feasible" point )
                    with
                    | Some gates, Some wall, Some (Json.Bool feasible) ->
                      Some (gates, wall, feasible)
                    | _ -> None))
        | _ -> None)
      items

(* Returns the number of violations (0 = near-linear and feasible). *)
let check_scaling ~max_ratio ~min_seconds series =
  let violations = ref 0 in
  List.iter
    (fun (gates, _, feasible) ->
      if not feasible then begin
        incr violations;
        Printf.printf "greedy-scaling: %d gates INFEASIBLE result\n" gates
      end)
    series;
  let ratios =
    let rec pairs = function
      | (g0, w0, _) :: ((g1, w1, _) :: _ as rest) ->
        (* Skip noise-floor pairs; the remaining points still cover a
           wide enough span to distinguish linear from quadratic. *)
        if w0 >= min_seconds then ((g0, w0), (g1, w1)) :: pairs rest else pairs rest
      | _ -> []
    in
    pairs series
  in
  let hard_cap = max_ratio *. 1.3 in
  let log_sum = ref 0.0 in
  List.iter
    (fun ((g0, w0), (g1, w1)) ->
      let ratio = w1 /. w0 in
      log_sum := !log_sum +. log ratio;
      Printf.printf "greedy-scaling: %7d -> %7d gates  %6.2fs -> %6.2fs  ratio %.2fx\n" g0
        g1 w0 w1 ratio;
      if ratio > hard_cap then begin
        incr violations;
        Printf.printf "greedy-scaling: ratio %.2fx exceeds hard cap %.2fx\n" ratio hard_cap
      end)
    ratios;
  (match ratios with
   | [] -> ()
   | _ ->
     let mean = exp (!log_sum /. float_of_int (List.length ratios)) in
     let verdict = if mean <= max_ratio then "near-linear" else "VIOLATION" in
     Printf.printf "greedy-scaling: mean ratio per doubling %.2fx (bound %.2fx) — %s\n" mean
       max_ratio verdict;
     if mean > max_ratio then incr violations);
  !violations

let () =
  let tolerance = ref 0.15 in
  let min_seconds = ref 0.05 in
  let max_ratio = ref 3.5 in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f >= 0.0 -> tolerance := f
       | _ -> usage ());
      parse rest
    | "--min-seconds" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f >= 0.0 -> min_seconds := f
       | _ -> usage ());
      parse rest
    | "--max-ratio" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f > 0.0 -> max_ratio := f
       | _ -> usage ());
      parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
      positional := arg :: !positional;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !positional with
    | [ b; c ] -> (b, c)
    | _ -> usage ()
  in
  let baseline = artifacts (load baseline_path) in
  let current = artifacts (load current_path) in
  if baseline = [] then begin
    Printf.eprintf "bench_compare: %s lists no artifacts\n" baseline_path;
    exit 2
  end;
  Printf.printf "%-12s %12s %12s %10s  %s\n" "artifact" "baseline(s)" "current(s)"
    "delta" "verdict";
  let regressions = ref 0 in
  List.iter
    (fun (name, base_wall) ->
      match List.assoc_opt name current with
      | None -> Printf.printf "%-12s %12.3f %12s %10s  missing from current\n" name base_wall "-" "-"
      | Some cur_wall ->
        let delta_pc = (cur_wall -. base_wall) /. base_wall *. 100.0 in
        let verdict =
          if base_wall < !min_seconds then "skip (below floor)"
          else if cur_wall > base_wall *. (1.0 +. !tolerance) then begin
            incr regressions;
            "REGRESSION"
          end
          else "ok"
        in
        Printf.printf "%-12s %12.3f %12.3f %+9.1f%%  %s\n" name base_wall cur_wall
          delta_pc verdict)
    baseline;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name baseline) then
        Printf.printf "%-12s %12s %12s %10s  new (no baseline)\n" name "-" "-" "-")
    current;
  let scaling_violations =
    match scaling_series (load current_path) with
    | None -> 0
    | Some series ->
      check_scaling ~max_ratio:!max_ratio ~min_seconds:!min_seconds series
  in
  if !regressions > 0 then
    Printf.eprintf "bench_compare: %d artifact(s) regressed more than %.0f%%\n"
      !regressions (!tolerance *. 100.0);
  if scaling_violations > 0 then
    Printf.eprintf "bench_compare: greedy-scaling check failed (%d violation(s))\n"
      scaling_violations;
  if !regressions > 0 || scaling_violations > 0 then exit 1

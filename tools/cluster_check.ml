(* CI helper: end-to-end smoke of the standbyd cluster layer.

     cluster_check STANDBYOPT BENCH_FILE BATCH_CSV

   Spawns two `standbyopt serve` backends and one `standbyopt route`
   coordinator as real subprocesses on fresh Unix sockets, then drives
   the wire protocol through the router.  Asserts:

     - c17 (inline bench text) and c432 (builtin circuit) through the
       router answer the same leakage the offline `standbyopt batch` run
       wrote to BATCH_CSV (1e-5 relative: the CSV renders %%.6g),
     - SIGKILL of the backend actually running a long job mid-stream is
       survived: the router fails the dead dial over to the surviving
       backend and the client still receives a result — bit-identical
       to an in-process offline run of the same netlist — with zero
       failed client requests,
     - a wire `drain` retires the router cleanly (exit 0), and a
       SIGTERM retires the surviving backend cleanly (exit 0), while
       the killed backend is reaped with SIGKILL. *)

module Json = Standby_telemetry.Json
module Process = Standby_device.Process
module Bench_io = Standby_netlist.Bench_io
module Version = Standby_cells.Version
module Optimizer = Standby_opt.Optimizer
module Assignment = Standby_power.Assignment
module Evaluate = Standby_power.Evaluate
module Random_logic = Standby_circuits.Random_logic
module Job = Standby_service.Job
module Protocol = Standby_server.Protocol
module Client = Standby_server.Client

let fail fmt =
  Printf.ksprintf (fun msg -> prerr_endline ("cluster_check: " ^ msg); exit 1) fmt

let say fmt = Printf.ksprintf (fun msg -> Printf.printf "cluster_check: %s\n%!" msg) fmt

let read_file path = In_channel.with_open_text path In_channel.input_all

let csv_leakage csv_path ~job =
  let lines = String.split_on_char '\n' (read_file csv_path) in
  let split line = String.split_on_char ',' line in
  match lines with
  | header :: rows -> (
    let columns = split header in
    let col name =
      match List.find_index (String.equal name) columns with
      | Some i -> i
      | None -> fail "%s: no %s column" csv_path name
    in
    let job_col = col "job" and leak_col = col "leakage_A" in
    match
      List.find_map
        (fun row ->
          let fields = split row in
          if List.nth_opt fields job_col = Some job then
            Option.bind (List.nth_opt fields leak_col) float_of_string_opt
          else None)
        rows
    with
    | Some v -> v
    | None -> fail "%s: no parsable row for job %s" csv_path job)
  | [] -> fail "%s: empty CSV" csv_path

let fresh_socket () =
  let file = Filename.temp_file "standbyd-cluster-ci" ".sock" in
  Sys.remove file;
  file

let spawn standbyopt args =
  Unix.create_process standbyopt
    (Array.of_list (standbyopt :: args))
    Unix.stdin Unix.stdout Unix.stderr

let connect_with_retry ?(deadline_s = 20.0) address =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    match Client.connect ~connect_timeout_s:2.0 address with
    | Ok c -> c
    | Error (Client.Unavailable _) when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.1;
      go ()
    | Error e -> fail "connect %s: %s" (Protocol.address_to_string address) (Client.error_message e)
  in
  go ()

let cok what = function
  | Ok v -> v
  | Error e -> fail "%s: %s" what (Client.error_message e)

let expect_result what = function
  | Protocol.Result p -> p
  | r ->
    fail "%s: expected a result, got %s" what
      (Json.to_string (Protocol.response_to_json r))

let optimize ~id ~source ~penalty =
  Protocol.Optimize
    {
      Protocol.id;
      source;
      mode = Version.default_mode;
      method_ = Optimizer.Heuristic_1;
      penalty;
      deadline_s = None;
      progress = false;
    }

let check_csv_parity ~what ~served ~expected =
  let rel = abs_float (served -. expected) /. abs_float expected in
  if rel > 1e-5 then
    fail "%s: served leakage %.9g disagrees with batch CSV %.9g (rel %.2g)" what served
      expected rel;
  say "%s OK (leakage %.6g A, rel %.2g vs batch)" what served rel

(* Poll a backend's STATUS over its own socket: which one is running the
   long job?  Returns the number in flight, or None once the backend is
   unreachable (e.g. already killed). *)
let in_flight_of address =
  match Client.connect ~connect_timeout_s:1.0 address with
  | Error _ -> None
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        match Client.rpc c Protocol.Status with
        | Ok (Protocol.Status_reply s) -> Some s.Protocol.in_flight
        | _ -> None)

let () =
  let standbyopt, bench_file, csv_file =
    match Sys.argv with
    | [| _; a; b; c |] -> (a, b, c)
    | _ -> fail "usage: cluster_check STANDBYOPT BENCH_FILE BATCH_CSV"
  in
  let sock_a = fresh_socket () and sock_b = fresh_socket () in
  let sock_r = fresh_socket () in
  let addr_a = Protocol.Unix_socket sock_a and addr_b = Protocol.Unix_socket sock_b in
  let addr_r = Protocol.Unix_socket sock_r in
  let serve_args sock =
    [ "serve"; "--listen"; "unix:" ^ sock; "--no-cache"; "--workers"; "2";
      "--log-level"; "warning" ]
  in
  let pid_a = spawn standbyopt (serve_args sock_a) in
  let pid_b = spawn standbyopt (serve_args sock_b) in
  let pid_r =
    spawn standbyopt
      [ "route"; "--listen"; "unix:" ^ sock_r; "--backend"; "unix:" ^ sock_a;
        "--backend"; "unix:" ^ sock_b; "--probe-interval"; "0.2"; "--log-level";
        "info" ]
  in
  say "backends %d/%d up, router %d" pid_a pid_b pid_r;
  (* The router only listens once it can see its fleet config; all three
     sockets must come up. *)
  List.iter (fun a -> Client.close (connect_with_retry a)) [ addr_a; addr_b; addr_r ];
  let router = connect_with_retry addr_r in

  (* 1. Leakage parity through the router vs the offline batch CSV —
     one job as inline bench text, one as a builtin circuit name. *)
  let bench_text = read_file bench_file in
  let r_c17 =
    expect_result "c17 via router"
      (cok "c17 rpc"
         (Client.rpc router
            (optimize ~id:"ci-c17"
               ~source:(Protocol.Bench { name = "c17"; text = bench_text })
               ~penalty:0.02)))
  in
  check_csv_parity ~what:"routed c17" ~served:r_c17.Protocol.leakage_a
    ~expected:(csv_leakage csv_file ~job:"c17-tight");
  let r_c432 =
    expect_result "c432 via router"
      (cok "c432 rpc"
         (Client.rpc router
            (optimize ~id:"ci-c432" ~source:(Protocol.Circuit "c432") ~penalty:0.05)))
  in
  check_csv_parity ~what:"routed c432" ~served:r_c432.Protocol.leakage_a
    ~expected:(csv_leakage csv_file ~job:"c432-ci");

  (* 2. Failover under SIGKILL.  Generate a netlist big enough that heu1
     runs for a second or two, round-trip it through .bench text so the
     wire job and the in-process reference start from identical input,
     and compute the offline answer first. *)
  let big =
    match
      Bench_io.of_string
        (Bench_io.to_string
           (Random_logic.generate ~name:"ci-big" ~seed:7 ~inputs:400 ~gates:16000 ()))
    with
    | Ok net -> net
    | Error msg -> fail "big netlist failed to round-trip through .bench: %s" msg
  in
  let big_text = Bench_io.to_string big in
  let libraries = Job.Library_cache.create () in
  let lib =
    Job.Library_cache.get libraries ~mode:Version.default_mode ~process:Process.default
  in
  let offline = Optimizer.run lib big ~penalty:0.05 Optimizer.Heuristic_1 in
  say "big netlist: %d gates, offline leakage %.6g A" 16000
    offline.Optimizer.breakdown.Evaluate.total;
  cok "send big job"
    (Client.send router
       (optimize ~id:"ci-big"
          ~source:(Protocol.Bench { name = "ci-big"; text = big_text })
          ~penalty:0.05));
  (* Find the backend actually computing it and SIGKILL that one. *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec find_owner () =
    if Unix.gettimeofday () > deadline then
      fail "never observed the big job in flight on a backend";
    match (in_flight_of addr_a, in_flight_of addr_b) with
    | Some n, _ when n >= 1 -> (pid_a, "A")
    | _, Some n when n >= 1 -> (pid_b, "B")
    | _ ->
      Unix.sleepf 0.05;
      find_owner ()
  in
  let victim_pid, victim_name = find_owner () in
  Unix.kill victim_pid Sys.sigkill;
  say "SIGKILLed backend %s (pid %d) with the job in flight" victim_name victim_pid;
  let retried = expect_result "big job after SIGKILL" (cok "recv big job" (Client.recv router)) in
  if retried.Protocol.id <> "ci-big" then fail "wrong id on retried result";
  (* The retried answer must be bit-identical to the offline run: same
     doubles, same assignment string. *)
  if retried.Protocol.leakage_a <> offline.Optimizer.breakdown.Evaluate.total then
    fail "retried leakage %.17g <> offline %.17g" retried.Protocol.leakage_a
      offline.Optimizer.breakdown.Evaluate.total;
  if retried.Protocol.assignment <> Assignment.to_string offline.Optimizer.assignment then
    fail "retried assignment diverges from the offline run";
  say "failover OK (retried result bit-identical to offline, zero failed requests)";

  (* 3. Drain the router over the wire; it must answer, finish, and exit
     0.  Then retire the surviving backend with SIGTERM. *)
  (match cok "drain rpc" (Client.rpc router (Protocol.Drain { backend = None })) with
   | Protocol.Status_reply s when s.Protocol.draining -> ()
   | r -> fail "drain: expected a draining status, got %s" (Json.to_string (Protocol.response_to_json r)));
  Client.close router;
  (match Unix.waitpid [] pid_r with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED n -> fail "router exited %d after drain" n
   | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> fail "router killed by signal %d" n);
  let survivor_pid = if victim_pid = pid_a then pid_b else pid_a in
  Unix.kill survivor_pid Sys.sigterm;
  (match Unix.waitpid [] survivor_pid with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED n -> fail "surviving backend exited %d after SIGTERM" n
   | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> fail "surviving backend killed by signal %d" n);
  (match Unix.waitpid [] victim_pid with
   | _, Unix.WSIGNALED n when n = Sys.sigkill -> ()
   | _, status ->
     let s =
       match status with
       | Unix.WEXITED n -> Printf.sprintf "exit %d" n
       | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
       | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n
     in
     fail "victim backend was reaped with %s, expected SIGKILL" s);
  say "drain OK (router exit 0, survivor exit 0, victim reaped)"

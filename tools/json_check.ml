(* CI helper: assert a file is valid JSON, optionally that it names
   given instruments.

     json_check FILE [NAME...]

   Exit 0 iff FILE parses with Standby_telemetry.Json and every NAME
   appears as a "name" field somewhere in the document — used by the
   ci-smoke rule to check the --metrics export carries the cache and
   job-histogram instruments. *)

module Json = Standby_telemetry.Json

let rec names acc = function
  | Json.Obj members ->
    let acc =
      match List.assoc_opt "name" members with
      | Some (Json.String n) -> n :: acc
      | _ -> acc
    in
    List.fold_left (fun acc (_, v) -> names acc v) acc members
  | Json.List items -> List.fold_left names acc items
  | _ -> acc

let () =
  match Array.to_list Sys.argv with
  | _ :: path :: required ->
    let text = In_channel.with_open_text path In_channel.input_all in
    (match Json.of_string text with
     | Error msg ->
       Printf.eprintf "%s: invalid JSON: %s\n" path msg;
       exit 1
     | Ok doc ->
       let present = names [] doc in
       let missing = List.filter (fun n -> not (List.mem n present)) required in
       if missing <> [] then begin
         Printf.eprintf "%s: missing instrument(s): %s\n" path (String.concat ", " missing);
         exit 1
       end)
  | _ ->
    prerr_endline "usage: json_check FILE [NAME...]";
    exit 2

(* CI helper: end-to-end smoke of the fleet observability layer.

     obs_check STANDBYOPT PREFIX

   Spawns two `standbyopt serve` backends and one `standbyopt route`
   coordinator, each writing its own JSONL trace (PREFIX-a.jsonl,
   PREFIX-b.jsonl, PREFIX-router.jsonl), then submits one optimize
   request through the router with `standbyopt submit --trace
   PREFIX-client.jsonl --progress`.  Asserts:

     - the router's aggregated `stats` reply equals the sum of direct
       per-backend `stats` scrapes on the traffic-stable counters
       (server.accepted, engine.jobs_computed, cluster.* are
       router-only and absent from backends),
     - after every process has exited (traces flush at exit), the four
       trace files merge into a forest with exactly one propagated
       trace: a single root span — the client's [client.submit] —
       whose descendants include the router's [cluster.route] and a
       backend's [server.request], every hop tagged with the same
       trace id and a distinct pid, wall times properly nested,
     - the merged rendering (what `standbyopt trace summarize --merge`
       prints) is written to PREFIX-merged.txt.

   The drain path mirrors cluster_check: wire drain for the router,
   SIGTERM for the backends, every exit asserted 0. *)

module Json = Standby_telemetry.Json
module Metrics = Standby_telemetry.Metrics
module Trace = Standby_telemetry.Trace
module Trace_view = Standby_report.Trace_view
module Protocol = Standby_server.Protocol
module Client = Standby_server.Client

let fail fmt =
  Printf.ksprintf (fun msg -> prerr_endline ("obs_check: " ^ msg); exit 1) fmt

let say fmt = Printf.ksprintf (fun msg -> Printf.printf "obs_check: %s\n%!" msg) fmt

let fresh_socket () =
  let file = Filename.temp_file "standbyd-obs-ci" ".sock" in
  Sys.remove file;
  file

let spawn standbyopt args =
  Unix.create_process standbyopt
    (Array.of_list (standbyopt :: args))
    Unix.stdin Unix.stdout Unix.stderr

let connect_with_retry ?(deadline_s = 20.0) address =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    match Client.connect ~connect_timeout_s:2.0 address with
    | Ok c -> c
    | Error (Client.Unavailable _) when Unix.gettimeofday () < deadline ->
      Unix.sleepf 0.1;
      go ()
    | Error e ->
      fail "connect %s: %s" (Protocol.address_to_string address) (Client.error_message e)
  in
  go ()

let cok what = function
  | Ok v -> v
  | Error e -> fail "%s: %s" what (Client.error_message e)

let stats_of address ~what =
  let c = connect_with_retry address in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      match cok what (Client.rpc c Protocol.Stats) with
      | Protocol.Stats_reply snapshot -> snapshot
      | r ->
        fail "%s: expected stats, got %s" what (Json.to_string (Protocol.response_to_json r)))

let expect_exit what pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "%s exited %d" what n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> fail "%s killed by signal %d" what n

(* The counters a scrape itself cannot disturb: only optimize traffic
   moves them, and obs_check is the sole client.  server.connections
   would count the scrapes. *)
let stable_counters = [ "server.accepted"; "engine.jobs_computed"; "engine.jobs_cached" ]

let () =
  let standbyopt, prefix =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ -> fail "usage: obs_check STANDBYOPT PREFIX"
  in
  let trace_client = prefix ^ "-client.jsonl" in
  let trace_router = prefix ^ "-router.jsonl" in
  let trace_a = prefix ^ "-a.jsonl" in
  let trace_b = prefix ^ "-b.jsonl" in
  let merged_txt = prefix ^ "-merged.txt" in
  let sock_a = fresh_socket () and sock_b = fresh_socket () in
  let sock_r = fresh_socket () in
  let addr_a = Protocol.Unix_socket sock_a and addr_b = Protocol.Unix_socket sock_b in
  let addr_r = Protocol.Unix_socket sock_r in
  let serve_args sock trace =
    [ "serve"; "--listen"; "unix:" ^ sock; "--no-cache"; "--workers"; "2";
      "--log-level"; "warning"; "--trace"; trace ]
  in
  let pid_a = spawn standbyopt (serve_args sock_a trace_a) in
  let pid_b = spawn standbyopt (serve_args sock_b trace_b) in
  let pid_r =
    spawn standbyopt
      [ "route"; "--listen"; "unix:" ^ sock_r; "--backend"; "unix:" ^ sock_a;
        "--backend"; "unix:" ^ sock_b; "--probe-interval"; "0.2"; "--log-level";
        "warning"; "--trace"; trace_router ]
  in
  say "backends %d/%d up, router %d" pid_a pid_b pid_r;
  List.iter (fun a -> Client.close (connect_with_retry a)) [ addr_a; addr_b; addr_r ];

  (* 1. One traced, progress-streaming submit through the router — the
     real client code path mints the trace id and the client.submit
     root span. *)
  let pid_submit =
    spawn standbyopt
      [ "submit"; "--connect"; "unix:" ^ sock_r; "--circuit"; "c432"; "--penalty";
        "0.05"; "--progress"; "--trace"; trace_client; "--log-level"; "warning" ]
  in
  expect_exit "submit" pid_submit;
  say "traced submit through the router OK";

  (* 2. Aggregated stats vs the sum of direct per-backend scrapes. *)
  let snap_a = stats_of addr_a ~what:"stats A" in
  let snap_b = stats_of addr_b ~what:"stats B" in
  let fleet = stats_of addr_r ~what:"stats via router" in
  let expected = Metrics.merge_snapshots [ snap_a; snap_b ] in
  List.iter
    (fun name ->
      let v snap = Option.value (Metrics.find_counter snap name) ~default:0 in
      if v fleet <> v expected then
        fail "aggregated %s = %d, per-backend sum = %d" name (v fleet) (v expected))
    stable_counters;
  if Option.value (Metrics.find_counter fleet "server.accepted") ~default:0 < 1 then
    fail "aggregated server.accepted should count the submitted job";
  (match Metrics.find_histogram fleet "engine.job_wall_s" with
   | Some h when h.Metrics.count >= 1 -> ()
   | _ -> fail "aggregated engine.job_wall_s histogram is missing or empty");
  say "aggregated stats equal the sum of per-backend scrapes (%s)"
    (String.concat ", " stable_counters);

  (* 3. Drain everything so every process flushes its trace on exit. *)
  let router = connect_with_retry addr_r in
  (match cok "drain rpc" (Client.rpc router (Protocol.Drain { backend = None })) with
   | Protocol.Status_reply s when s.Protocol.draining -> ()
   | r ->
     fail "drain: expected a draining status, got %s"
       (Json.to_string (Protocol.response_to_json r)));
  Client.close router;
  expect_exit "router" pid_r;
  Unix.kill pid_a Sys.sigterm;
  Unix.kill pid_b Sys.sigterm;
  expect_exit "backend A" pid_a;
  expect_exit "backend B" pid_b;

  (* 4. Merge the four per-process traces and assert the single
     cross-process tree the propagated trace id promises. *)
  let records =
    match Trace.read_files [ trace_client; trace_router; trace_a; trace_b ] with
    | Ok records -> records
    | Error msg -> fail "merged trace read: %s" msg
  in
  let forest = Trace.assemble records in
  let traced =
    List.filter (fun (t : Trace.tree) -> t.Trace.tree_trace_id <> None) forest
  in
  let tree =
    match traced with
    | [ t ] -> t
    | ts -> fail "expected exactly one propagated trace, found %d" (List.length ts)
  in
  let trace_id = Option.get tree.Trace.tree_trace_id in
  let root =
    match tree.Trace.roots with
    | [ r ] -> r
    | rs -> fail "trace %s: expected one root span, found %d" trace_id (List.length rs)
  in
  let root_span = root.Trace.span in
  if root_span.Trace.name <> "client.submit" then
    fail "root span is %S, expected client.submit" root_span.Trace.name;
  if root_span.Trace.role <> Some "client" then fail "root span is not tagged role=client";
  let rec find_named name node =
    if (node.Trace.span).Trace.name = name then Some node
    else List.find_map (find_named name) node.Trace.children
  in
  let hop name role =
    match find_named name root with
    | None -> fail "trace %s: no %s span under the client root" trace_id name
    | Some node ->
      let s = node.Trace.span in
      if s.Trace.role <> Some role then
        fail "%s span is tagged %s, expected role=%s" name
          (Option.value s.Trace.role ~default:"<none>") role;
      if s.Trace.trace_id <> Some trace_id then
        fail "%s span does not carry trace id %s" name trace_id;
      if s.Trace.pid = root_span.Trace.pid then
        fail "%s span shares the client's pid — not a cross-process hop" name;
      node
  in
  let route = hop "cluster.route" "router" in
  let request = hop "server.request" "server" in
  let wall n = Option.value (n.Trace.span).Trace.dur_s ~default:0.0 in
  (* Each hop's interval contains the next one's in real time; compare
     with a small slack for clock granularity. *)
  if wall root +. 0.005 < wall route then
    fail "client span (%.4fs) shorter than the router hop (%.4fs)" (wall root) (wall route);
  if wall route +. 0.005 < wall request then
    fail "router hop (%.4fs) shorter than the backend hop (%.4fs)" (wall route)
      (wall request);
  say "merged trace OK: one root (%s), router and backend hops share trace %s"
    root_span.Trace.name trace_id;

  (* 5. Persist the merged rendering as a CI artifact. *)
  let rendering = Trace_view.render_merged records in
  if not (String.length rendering > 0) then fail "merged rendering is empty";
  Out_channel.with_open_text merged_txt (fun oc -> Out_channel.output_string oc rendering);
  say "wrote %s (%d merged records)" merged_txt (List.length records)

(* CI check for the partition-and-conquer optimizer.

   Usage: partition_check <netlist.bench>

   Loads the (large, generated) netlist the greedy smoke already
   produced and asserts the three partition guarantees end to end, the
   way a user would hit them through the library:

   1. Feasibility — the partitioned result meets the delay budget
      (Optimizer.run re-verifies internally; we re-check the reported
      slack anyway).
   2. Determinism across workers — jobs=1 and jobs=2 return
      bit-identical assignments.  Region decomposition and the
      per-region solves are deterministic and results merge in region
      index order, so the worker count must not leak into the answer.
      The budget below is far above time-to-quiescence, so every
      region exhausts and the identity is exact, not best-effort.
   3. Quality tolerance — partitioning trades global moves for
      locality, so its leakage may exceed the flat greedy answer on
      the same netlist, but only boundedly (frozen boundary contracts
      keep regions honest).  DESIGN.md documents the tolerance; we
      gate at 2.5x, comfortably above the ~1.5x measured. *)

module Bench_io = Standby_netlist.Bench_io
module Netlist = Standby_netlist.Netlist
module Process = Standby_device.Process
module Library = Standby_cells.Library
module Assignment = Standby_power.Assignment
module Evaluate = Standby_power.Evaluate
module Optimizer = Standby_opt.Optimizer

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("partition_check: " ^ s); exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else die "usage: partition_check <netlist.bench>" in
  let net =
    match Bench_io.read_file path with
    | Ok net -> net
    | Error e -> die "cannot load %s: %s" path e
  in
  let lib = Library.build Process.default in
  let penalty = 0.05 in
  let budget_s = 120.0 in
  let part jobs =
    Optimizer.run ~jobs lib net ~penalty
      (Optimizer.Partition { time_budget_s = budget_s; regions = 0 })
  in
  let p1 = part 1 in
  let slack = p1.Optimizer.budget -. p1.Optimizer.delay in
  if slack < -1e-9 then
    die "infeasible: delay %.4f exceeds budget %.4f" p1.Optimizer.delay p1.Optimizer.budget;
  if p1.Optimizer.degraded then
    die "budget %.0f s expired before quiescence; determinism not checkable" budget_s;
  let p2 = part 2 in
  let a1 = Assignment.to_string p1.Optimizer.assignment in
  let a2 = Assignment.to_string p2.Optimizer.assignment in
  if not (String.equal a1 a2) then
    die "jobs=1 and jobs=2 disagree: %.6g uA vs %.6g uA"
      (p1.Optimizer.breakdown.Evaluate.total *. 1e6)
      (p2.Optimizer.breakdown.Evaluate.total *. 1e6);
  let flat =
    Optimizer.run lib net ~penalty (Optimizer.Greedy { time_budget_s = budget_s })
  in
  let pt = p1.Optimizer.breakdown.Evaluate.total
  and ft = flat.Optimizer.breakdown.Evaluate.total in
  if pt > 2.5 *. ft then
    die "partition leakage %.6g uA is more than 2.5x flat greedy %.6g uA" (pt *. 1e6)
      (ft *. 1e6);
  Printf.printf
    "partition_check OK: %d gates, %.4f slack, jobs parity OK, %.6g uA (flat %.6g uA, %.2fx)\n%!"
    (Netlist.gate_count net) slack (pt *. 1e6) (ft *. 1e6) (pt /. ft)

(* CI helper: end-to-end smoke of `standbyopt serve`.

     serve_check STANDBYOPT BENCH_FILE BATCH_CSV

   Spawns the daemon on a fresh Unix socket and drives the wire
   protocol with a hand-rolled client (Json + Unix only — deliberately
   independent of the server library, so a codec regression cannot hide
   on both sides).  Asserts:

     - an optimize round trip over the socket returns the same leakage
       the offline `standbyopt batch` run wrote to BATCH_CSV for the
       same job (1e-5 relative: the CSV renders %.6g),
     - STATUS answers with the admission snapshot,
     - METRICS exposes the server counters as Prometheus text,
     - SIGTERM with a job in flight still answers it and exits 0. *)

module Json = Standby_telemetry.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("serve_check: " ^ msg); exit 1) fmt

let read_file path = In_channel.with_open_text path In_channel.input_all

(* The batch CSV is unquoted for these columns; a plain split will do. *)
let csv_leakage csv_path ~job =
  let lines = String.split_on_char '\n' (read_file csv_path) in
  let split line = String.split_on_char ',' line in
  match lines with
  | header :: rows -> (
    let columns = split header in
    let col name =
      match List.find_index (String.equal name) columns with
      | Some i -> i
      | None -> fail "%s: no %s column" csv_path name
    in
    let job_col = col "job" and leak_col = col "leakage_A" in
    match
      List.find_map
        (fun row ->
          let fields = split row in
          if List.nth_opt fields job_col = Some job then
            Option.bind (List.nth_opt fields leak_col) float_of_string_opt
          else None)
        rows
    with
    | Some v -> v
    | None -> fail "%s: no parsable row for job %s" csv_path job)
  | [] -> fail "%s: empty CSV" csv_path

(* ------------------------------------------------------------------ *)
(* A minimal line-framed JSON client                                    *)

let write_line fd payload =
  let data = Bytes.of_string (payload ^ "\n") in
  let total = Bytes.length data in
  let rec push off =
    if off < total then push (off + Unix.write fd data off (total - off))
  in
  push 0

type line_reader = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let line_reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }

let rec read_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
    String.sub s 0 i
  | None -> (
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 -> fail "server closed the connection mid-response"
    | n ->
      Buffer.add_subbytes r.buf r.chunk 0 n;
      read_line r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line r)

let recv r =
  match Json.of_string (read_line r) with
  | Ok json -> json
  | Error msg -> fail "unparsable response: %s" msg

let str name json =
  match Option.bind (Json.member name json) Json.to_string_opt with
  | Some s -> s
  | None -> fail "response lacks string field %S in %s" name (Json.to_string json)

let num name json =
  match Option.bind (Json.member name json) Json.to_float_opt with
  | Some f -> f
  | None -> fail "response lacks numeric field %S in %s" name (Json.to_string json)

let connect_with_retry path =
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () > deadline then fail "daemon socket never came up";
      Unix.sleepf 0.1;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)

let () =
  let standbyopt, bench_file, csv_file =
    match Sys.argv with
    | [| _; a; b; c |] -> (a, b, c)
    | _ -> fail "usage: serve_check STANDBYOPT BENCH_FILE BATCH_CSV"
  in
  let expected = csv_leakage csv_file ~job:"c17-tight" in
  let bench_text = read_file bench_file in
  let socket = Filename.temp_file "standbyd-ci" ".sock" in
  Sys.remove socket;
  let pid =
    Unix.create_process standbyopt
      [|
        standbyopt; "serve"; "--listen"; "unix:" ^ socket; "--no-cache"; "--workers";
        "2"; "--log-level"; "info";
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let fd = connect_with_retry socket in
  let reader = line_reader fd in
  let send json = write_line fd (Json.to_string json) in

  (* 1. Optimize round trip vs the offline batch CSV. *)
  send
    (Json.Obj
       [
         ("v", Json.Int 1);
         ("type", Json.String "optimize");
         ("id", Json.String "ci");
         ("name", Json.String "c17");
         ("bench", Json.String bench_text);
         ("penalty", Json.Float 0.02);
       ]);
  let r = recv reader in
  if str "type" r <> "result" then fail "expected a result, got %s" (Json.to_string r);
  if str "id" r <> "ci" then fail "wrong id on result";
  if str "status" r <> "computed" then fail "expected computed, got %s" (str "status" r);
  let leakage = num "leakage_A" r in
  let rel = abs_float (leakage -. expected) /. abs_float expected in
  if rel > 1e-5 then
    fail "served leakage %.9g disagrees with batch CSV %.9g (rel %.2g)" leakage expected
      rel;
  Printf.printf "serve_check: optimize OK (leakage %.6g A, rel %.2g vs batch)\n%!" leakage
    rel;

  (* 2. STATUS snapshot. *)
  send (Json.Obj [ ("v", Json.Int 1); ("type", Json.String "status") ]);
  let s = recv reader in
  if str "type" s <> "status" then fail "expected status, got %s" (Json.to_string s);
  if num "accepted" s < 1.0 then fail "status accepted < 1";
  if num "capacity" s <= 0.0 then fail "status capacity <= 0";
  Printf.printf "serve_check: status OK (accepted %.0f, workers %.0f)\n%!"
    (num "accepted" s) (num "workers" s);

  (* 3. METRICS exposition. *)
  send (Json.Obj [ ("v", Json.Int 1); ("type", Json.String "metrics") ]);
  let m = recv reader in
  if str "type" m <> "metrics" then fail "expected metrics, got %s" (Json.to_string m);
  let body = str "body" m in
  List.iter
    (fun counter ->
      let sub = counter ^ " " in
      let present =
        String.split_on_char '\n' body
        |> List.exists (fun line ->
               String.length line >= String.length sub
               && String.sub line 0 (String.length sub) = sub)
      in
      if not present then fail "metrics exposition lacks %s" counter)
    [ "server_accepted"; "server_rejected"; "server_queue_depth"; "server_deadline_degraded" ];
  Printf.printf "serve_check: metrics OK\n%!";

  (* 4. SIGTERM drain with a job in flight: the admitted job must still
     be answered and the daemon must exit 0. *)
  send
    (Json.Obj
       [
         ("v", Json.Int 1);
         ("type", Json.String "optimize");
         ("id", Json.String "draining");
         ("name", Json.String "c17");
         ("bench", Json.String bench_text);
         ("method", Json.Obj [ ("name", Json.String "heu2"); ("time_limit_s", Json.Float 0.5) ]);
       ]);
  Unix.sleepf 0.1;
  Unix.kill pid Sys.sigterm;
  let d = recv reader in
  if str "type" d <> "result" || str "id" d <> "draining" then
    fail "in-flight job lost across SIGTERM: %s" (Json.to_string d);
  (match Unix.waitpid [] pid with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED n -> fail "daemon exited %d after SIGTERM" n
   | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> fail "daemon killed by signal %d" n);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Printf.printf "serve_check: SIGTERM drain OK (exit 0, no job lost)\n%!"
